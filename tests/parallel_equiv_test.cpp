/**
 * @file
 * The serial-equivalence oracle for the parallel experiment engine:
 * the same test-scale matrix is simulated with 1, 2, 4, and 8 worker
 * threads and every cell's SchedStats must be bit-identical to the
 * serial run — cycle counts, IPC, branch and CTI counters, load-class
 * partitions, collapse events, signature tables, distance histograms,
 * and the issued-per-cycle distribution.  Only wallNanos (host
 * timing, observational) is allowed to differ.
 *
 * This guards the tentpole invariant: parallelism is an execution
 * detail and can never perturb simulation results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "sim/experiment.hh"

namespace ddsc
{
namespace
{

const std::string kConfigs = "ACD";
const std::vector<unsigned> kWidths = {4, 16};

void
expectSameHistogram(const Histogram &a, const Histogram &b,
                    const std::string &what)
{
    EXPECT_EQ(a.samples(), b.samples()) << what;
    EXPECT_EQ(a.raw(), b.raw()) << what;
}

void
expectSameCollapse(const CollapseStats &a, const CollapseStats &b,
                   const std::string &what)
{
    EXPECT_EQ(a.events(), b.events()) << what;
    EXPECT_EQ(a.pairEvents(), b.pairEvents()) << what;
    EXPECT_EQ(a.tripleEvents(), b.tripleEvents()) << what;
    EXPECT_EQ(a.collapsedInstructions(), b.collapsedInstructions())
        << what;
    for (unsigned c = 0; c < kNumCollapseCategories; ++c) {
        EXPECT_EQ(a.eventsOf(static_cast<CollapseCategory>(c)),
                  b.eventsOf(static_cast<CollapseCategory>(c)))
            << what << " category " << c;
    }
    expectSameHistogram(a.distances(), b.distances(),
                        what + " distances");
    EXPECT_EQ(a.pairSignatures(), b.pairSignatures()) << what;
    EXPECT_EQ(a.tripleSignatures(), b.tripleSignatures()) << what;
}

/** Everything except wallNanos must match bit for bit. */
void
expectSameStats(const SchedStats &a, const SchedStats &b,
                const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.ipc(), b.ipc()) << what;           // bit-identical
    EXPECT_EQ(a.condBranches, b.condBranches) << what;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << what;
    EXPECT_EQ(a.ctiPredictions, b.ctiPredictions) << what;
    EXPECT_EQ(a.ctiMispredicts, b.ctiMispredicts) << what;
    EXPECT_EQ(a.loads, b.loads) << what;
    for (unsigned c = 0; c < kNumLoadClasses; ++c)
        EXPECT_EQ(a.loadClasses[c], b.loadClasses[c])
            << what << " load class " << c;
    EXPECT_EQ(a.eliminatedInstructions, b.eliminatedInstructions)
        << what;
    EXPECT_EQ(a.valuePredHits, b.valuePredHits) << what;
    EXPECT_EQ(a.valuePredWrong, b.valuePredWrong) << what;
    expectSameCollapse(a.collapse, b.collapse, what + " collapse");
    expectSameHistogram(a.issuedPerCycle, b.issuedPerCycle,
                        what + " issuedPerCycle");
}

/** A fresh test-scale driver with the whole test matrix simulated. */
std::unique_ptr<ExperimentDriver>
runMatrix(unsigned jobs)
{
    auto driver = std::make_unique<ExperimentDriver>(
        0, /*test_scale=*/true, jobs);
    driver->prefetch(ExperimentDriver::cellsFor(
        ExperimentDriver::everything(), kConfigs, kWidths));
    return driver;
}

/** Matrix drivers cached per job count (each cell is simulated once
 *  per job count across the whole test binary). */
ExperimentDriver &
driverFor(unsigned jobs)
{
    static std::map<unsigned, std::unique_ptr<ExperimentDriver>> cache;
    auto it = cache.find(jobs);
    if (it == cache.end())
        it = cache.emplace(jobs, runMatrix(jobs)).first;
    return *it->second;
}

/** The serial baseline, shared by all comparisons. */
ExperimentDriver &
serialDriver()
{
    return driverFor(1);
}

class ParallelEquiv : public testing::TestWithParam<unsigned>
{
};

TEST_P(ParallelEquiv, EveryCellIsBitIdentical)
{
    const unsigned jobs = GetParam();
    ExperimentDriver *parallel = &driverFor(jobs);
    EXPECT_EQ(parallel->jobs(), jobs);

    for (const WorkloadSpec *spec : ExperimentDriver::everything()) {
        for (const char config : kConfigs) {
            for (const unsigned width : kWidths) {
                const std::string what = spec->name + "/" + config +
                    "/" + std::to_string(width) + " jobs=" +
                    std::to_string(jobs);
                expectSameStats(
                    serialDriver().stats(*spec, config, width),
                    parallel->stats(*spec, config, width), what);
            }
        }
    }
}

TEST_P(ParallelEquiv, AggregationsAreBitIdentical)
{
    // The reductions the figures/tables are built from: double
    // equality, not near-equality — identical cells reduced in
    // identical order must give identical bits.
    const unsigned jobs = GetParam();
    ExperimentDriver *parallel = &driverFor(jobs);
    const auto set = ExperimentDriver::everything();

    for (const char config : kConfigs) {
        for (const unsigned width : kWidths) {
            EXPECT_EQ(serialDriver().hmeanIpc(set, config, width),
                      parallel->hmeanIpc(set, config, width))
                << config << width;
            EXPECT_EQ(serialDriver().hmeanSpeedup(set, config, width),
                      parallel->hmeanSpeedup(set, config, width))
                << config << width;
            EXPECT_EQ(serialDriver().pctCollapsed(set, config, width),
                      parallel->pctCollapsed(set, config, width))
                << config << width;
            expectSameCollapse(
                serialDriver().mergedCollapse(set, config, width),
                parallel->mergedCollapse(set, config, width),
                std::string("merged ") + config +
                std::to_string(width));
            for (unsigned c = 0; c < kNumLoadClasses; ++c) {
                EXPECT_EQ(
                    serialDriver().meanLoadClassPct(
                        set, config, width,
                        static_cast<LoadClass>(c)),
                    parallel->meanLoadClassPct(
                        set, config, width,
                        static_cast<LoadClass>(c)))
                    << config << width << " class " << c;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Jobs, ParallelEquiv,
                         testing::Values(2u, 4u, 8u));

TEST(ParallelEquivMisc, PrefetchIsIdempotentAndCachePreserving)
{
    // A second prefetch of the same cells must not recompute: the
    // cached SchedStats objects keep their addresses.
    ExperimentDriver driver(0, /*test_scale=*/true, 4);
    const WorkloadSpec &spec = findWorkload("espresso");
    driver.prefetch({{&spec, 'D', 8}, {&spec, 'D', 8}});
    const SchedStats &first = driver.stats(spec, 'D', 8);
    driver.prefetch({{&spec, 'D', 8}});
    EXPECT_EQ(&first, &driver.stats(spec, 'D', 8));
    EXPECT_EQ(driver.cachedCells(), 1u);
}

TEST(ParallelEquivMisc, WallTimeIsRecordedPerCell)
{
    ExperimentDriver driver(0, /*test_scale=*/true, 2);
    const WorkloadSpec &spec = findWorkload("compress");
    driver.prefetch({{&spec, 'A', 4}, {&spec, 'D', 4}});
    EXPECT_GT(driver.stats(spec, 'A', 4).wallNanos, 0u);
    EXPECT_GT(driver.stats(spec, 'D', 4).wallNanos, 0u);
    EXPECT_GT(driver.cachedCellSeconds(), 0.0);
}

TEST(ParallelEquivMisc, ProgressObserversAreSafeDuringPrefetch)
{
    // cachedCells()/cachedCellSeconds() are documented as safe to call
    // while a prefetch() is filling the cache from worker threads;
    // they used to iterate the cache without taking the mutex.  Poll
    // them concurrently with a prefetch — the TSan CI job runs this
    // binary, so an unlocked iteration is a hard failure there, and
    // the monotonicity checks catch torn reads everywhere else.
    ExperimentDriver driver(0, /*test_scale=*/true, 4);
    const std::vector<ExperimentCell> cells = ExperimentDriver::cellsFor(
        ExperimentDriver::everything(), "AD", {4, 8});

    std::atomic<bool> done{false};
    std::size_t last_cells = 0;
    double last_seconds = 0.0;
    std::thread poller([&] {
        while (!done.load(std::memory_order_relaxed)) {
            const std::size_t cached = driver.cachedCells();
            const double seconds = driver.cachedCellSeconds();
            EXPECT_GE(cached, last_cells);
            EXPECT_GE(seconds, last_seconds - 1e-12);
            last_cells = cached;
            last_seconds = seconds;
            std::this_thread::yield();
        }
    });
    driver.prefetch(cells);
    done.store(true, std::memory_order_relaxed);
    poller.join();

    EXPECT_EQ(driver.cachedCells(), cells.size());
    EXPECT_GT(driver.cachedCellSeconds(), 0.0);
}

TEST(ParallelEquivMisc, SetJobsZeroFallsBackToDefaultPolicy)
{
    ExperimentDriver driver(0, true, 3);
    EXPECT_EQ(driver.jobs(), 3u);
    driver.setJobs(0);
    EXPECT_GE(driver.jobs(), 1u);
}

} // anonymous namespace
} // namespace ddsc
