/**
 * @file
 * End-to-end validation of the six benchmark analogues: each workload
 * is assembled, executed on the VM, and its architectural checksum is
 * compared against a plain C++ mirror of the same algorithm.  A
 * passing mirror test validates the assembler, the emulator, and the
 * workload code in one shot.
 */

#include <algorithm>
#include <array>
#include <cstdint>
#include <gtest/gtest.h>
#include <vector>

#include "trace/trace_stats.hh"
#include "workloads/workloads.hh"

namespace ddsc
{
namespace
{

std::uint32_t
lcg(std::uint32_t &x)
{
    x = x * 1664525u + 1013904223u;
    return x;
}

std::uint32_t
runChecksum(const WorkloadSpec &spec, unsigned scale)
{
    std::uint32_t checksum = 0;
    traceWorkload(spec, scale, &checksum);
    return checksum;
}

// --- compress mirror ---------------------------------------------------

std::uint32_t
compressMirror(unsigned n)
{
    std::uint32_t x = 12345;
    std::vector<std::uint8_t> input(n);
    for (unsigned i = 0; i < n; ++i) {
        lcg(x);
        input[i] = (x >> 24) & 15;
    }
    struct Entry { std::uint32_t key = 0xffffffffu; std::uint32_t code = 0; };
    std::vector<Entry> table(4096);
    std::uint32_t sum = 0;
    std::uint32_t code = input[0];
    std::uint32_t next = 256;
    for (unsigned i = 1; i < n; ++i) {
        const std::uint32_t c = input[i];
        const std::uint32_t key = (code << 8) | c;
        const std::uint32_t h = ((key * 0x9e3779b1u) >> 20) & 0xfff;
        if (table[h].key == key) {
            code = table[h].code;
        } else {
            sum += code;
            table[h] = {key, next};
            next = (next + 1) & 0xfff;
            code = c;
        }
    }
    return sum + code;
}

TEST(Workloads, CompressMatchesMirror)
{
    const WorkloadSpec &spec = compressWorkload();
    EXPECT_EQ(runChecksum(spec, spec.testScale),
              compressMirror(spec.testScale));
}

// --- espresso mirror ---------------------------------------------------

std::uint32_t
espressoMirror(unsigned rounds)
{
    std::uint32_t x = 98765;
    std::array<std::uint32_t, 64> a_arr, b_arr;
    for (unsigned i = 0; i < 64; ++i) {
        a_arr[i] = lcg(x);
        b_arr[i] = lcg(x);
    }
    std::uint32_t sum = 0;
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned i = 0; i < 64; ++i) {
            const std::uint32_t a = a_arr[i];
            const std::uint32_t b = b_arr[i];
            const std::uint32_t cover = a & ~b;
            const std::uint32_t merged = a | (b >> 1);
            const std::uint32_t w = cover ^ merged;
            a_arr[i] = w;
            if ((a & b) == b)
                sum += 1;
            sum += w >> 16;
        }
        const std::uint32_t saved = b_arr[0];
        for (unsigned i = 0; i < 63; ++i)
            b_arr[i] = b_arr[i + 1];
        b_arr[63] = saved;
    }
    return sum;
}

TEST(Workloads, EspressoMatchesMirror)
{
    const WorkloadSpec &spec = espressoWorkload();
    EXPECT_EQ(runChecksum(spec, spec.testScale),
              espressoMirror(spec.testScale));
}

// --- eqntott mirror ----------------------------------------------------

std::uint32_t
eqntottMirror(unsigned n)
{
    std::uint32_t x = 555;
    std::vector<std::uint32_t> keys(n);
    for (unsigned i = 0; i < n; ++i)
        keys[i] = lcg(x) >> 16;
    std::sort(keys.begin(), keys.end());
    std::uint32_t sum = 0;
    std::uint32_t prev = 0;
    for (unsigned i = 0; i < n; ++i) {
        sum += keys[i] ^ i;
        if (!(prev > keys[i]))
            sum += 1;
        prev = keys[i];
    }
    return sum;
}

TEST(Workloads, EqntottMatchesMirror)
{
    const WorkloadSpec &spec = eqntottWorkload();
    EXPECT_EQ(runChecksum(spec, spec.testScale),
              eqntottMirror(spec.testScale));
}

// --- li mirror -----------------------------------------------------------

std::uint32_t
liMirror(unsigned n)
{
    const std::uint32_t mask = n - 1;
    std::vector<std::uint32_t> car(n);
    std::vector<std::int64_t> next(n);
    std::uint32_t x = 24680;
    std::uint32_t slot = 0;
    for (unsigned i = 0; i < n; ++i) {
        lcg(x);
        car[slot] = x >> 20;
        const std::uint32_t walk = (slot * 1103515245u + 12345u) & mask;
        next[slot] = (i + 1 == n) ? -1 : static_cast<std::int64_t>(walk);
        slot = walk;
    }
    std::int64_t head = 0;      // the walk starts at slot 0
    std::uint32_t sum = 0;
    for (unsigned round = 0; round < 8; ++round) {
        for (std::int64_t p = head; p != -1; p = next[p])
            sum += car[p];
        std::int64_t prev = -1, cur = head;
        while (cur != -1) {
            const std::int64_t nx = next[cur];
            next[cur] = prev;
            prev = cur;
            cur = nx;
        }
        head = prev;
        for (std::int64_t p = head; p != -1; p = next[p])
            car[p] += 1;
        // eval: tag dispatch on (car & 3).
        for (std::int64_t p = head; p != -1; p = next[p]) {
            const std::uint32_t v = car[p];
            switch (v & 3) {
              case 0: sum += v; break;             // fixnum
              case 1: sum ^= v; break;             // cons
              case 2: sum += 1; break;             // symbol
              default: sum += v >> 2; break;       // string
            }
        }
    }
    return sum;
}

TEST(Workloads, LiMatchesMirror)
{
    const WorkloadSpec &spec = liWorkload();
    EXPECT_EQ(runChecksum(spec, spec.testScale),
              liMirror(spec.testScale));
}

// --- go mirror -----------------------------------------------------------

std::uint32_t
goMirror(unsigned passes)
{
    std::array<std::uint8_t, 441> board = {};
    std::array<std::uint32_t, 441> visited = {};
    for (unsigned i = 0; i < 21; ++i) {
        board[i] = 3;
        board[i + 420] = 3;
        board[i * 21] = 3;
        board[i * 21 + 20] = 3;
    }
    std::uint32_t x = 777;
    for (unsigned idx = 22; idx < 419; ++idx) {
        if (board[idx] == 3)
            continue;
        lcg(x);
        std::uint32_t v = (x >> 28) & 3;
        if (v == 3)
            v = 0;
        board[idx] = static_cast<std::uint8_t>(v);
    }
    std::uint32_t sum = 0;
    std::uint32_t gen = 0;
    std::vector<unsigned> stack;
    for (unsigned pass = 0; pass < passes; ++pass) {
        for (unsigned idx = 22; idx < 419; ++idx) {
            const std::uint8_t c = board[idx];
            if (c != 1 && c != 2)
                continue;
            ++gen;
            std::uint32_t libs = 0;
            stack.clear();
            stack.push_back(idx);
            visited[idx] = gen;
            while (!stack.empty()) {
                const unsigned q = stack.back();
                stack.pop_back();
                for (const int d : {-1, +1, -21, +21}) {
                    const unsigned nb = q + d;
                    const std::uint8_t v = board[nb];
                    if (v == 0) {
                        if (visited[nb] != gen) {
                            visited[nb] = gen;
                            ++libs;
                        }
                    } else if (v == c && visited[nb] != gen) {
                        visited[nb] = gen;
                        stack.push_back(nb);
                    }
                }
            }
            sum += libs;
        }
        lcg(x);
        const unsigned m = ((x >> 16) & 255) + 100;
        if (board[m] != 3) {
            std::uint32_t v = (x >> 28) & 3;
            if (v == 3)
                v = 0;
            board[m] = static_cast<std::uint8_t>(v);
        }
    }
    return sum;
}

TEST(Workloads, GoMatchesMirror)
{
    const WorkloadSpec &spec = goWorkload();
    EXPECT_EQ(runChecksum(spec, spec.testScale),
              goMirror(spec.testScale));
}

// --- ijpeg mirror ---------------------------------------------------------

void
butterflyMirror(const std::int32_t (&in)[8], std::int32_t (&out)[8])
{
    const std::int32_t t0 = in[0] + in[7], t7 = in[0] - in[7];
    const std::int32_t t1 = in[1] + in[6], t6 = in[1] - in[6];
    const std::int32_t t2 = in[2] + in[5], t5 = in[2] - in[5];
    const std::int32_t t3 = in[3] + in[4], t4 = in[3] - in[4];
    const std::int32_t u0 = t0 + t3, u3 = t0 - t3;
    const std::int32_t u1 = t1 + t2, u2 = t1 - t2;
    out[0] = u0 + u1;
    out[4] = u0 - u1;
    out[2] = u2 + (u3 >> 1);
    out[6] = u3 - (u2 >> 1);
    out[1] = t4 + (t5 >> 1);
    out[5] = t5 - (t6 >> 1);
    out[3] = t6 + (t7 >> 2);
    out[7] = t7 - (t4 >> 2);
}

std::uint32_t
ijpegMirror(unsigned rounds)
{
    std::vector<std::uint8_t> img(4096);
    std::uint32_t x = 31415;
    for (unsigned i = 0; i < 4096; ++i) {
        lcg(x);
        img[i] = static_cast<std::uint8_t>(x >> 24);
    }
    std::int32_t work[64];
    std::uint32_t sum = 0;
    for (unsigned round = 0; round < rounds; ++round) {
        for (unsigned block = 0; block < 64; ++block) {
            const unsigned base = (block >> 3) * 512 + (block & 7) * 8;
            for (unsigned row = 0; row < 8; ++row) {
                std::int32_t in[8], out[8];
                for (unsigned k = 0; k < 8; ++k)
                    in[k] = img[base + row * 64 + k];
                butterflyMirror(in, out);
                for (unsigned k = 0; k < 8; ++k)
                    work[row * 8 + k] = out[k];
            }
            for (unsigned col = 0; col < 8; ++col) {
                std::int32_t in[8], out[8];
                for (unsigned k = 0; k < 8; ++k)
                    in[k] = work[k * 8 + col];
                butterflyMirror(in, out);
                for (unsigned k = 0; k < 8; ++k)
                    sum += static_cast<std::uint32_t>(out[k]);
                for (unsigned k = 0; k < 8; ++k) {
                    img[base + k * 64 + col] =
                        static_cast<std::uint8_t>(out[k]);
                }
            }
        }
    }
    return sum;
}

TEST(Workloads, IjpegMatchesMirror)
{
    const WorkloadSpec &spec = ijpegWorkload();
    EXPECT_EQ(runChecksum(spec, spec.testScale),
              ijpegMirror(spec.testScale));
}

// --- structural properties ------------------------------------------------

TEST(Workloads, RegistryHasSixInPaperOrder)
{
    const auto &all = allWorkloads();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name, "compress");
    EXPECT_EQ(all[1].name, "espresso");
    EXPECT_EQ(all[2].name, "eqntott");
    EXPECT_EQ(all[3].name, "li");
    EXPECT_EQ(all[4].name, "go");
    EXPECT_EQ(all[5].name, "ijpeg");
}

TEST(Workloads, PointerChasingSubsetIsGoAndLi)
{
    const auto pc = workloadSubset(true);
    ASSERT_EQ(pc.size(), 2u);
    EXPECT_EQ(pc[0]->name, "li");
    EXPECT_EQ(pc[1]->name, "go");
    EXPECT_EQ(workloadSubset(false).size(), 4u);
}

TEST(Workloads, FindByName)
{
    EXPECT_EQ(findWorkload("go").paperName, "099.go");
}

TEST(Workloads, AllAssembleAtBothScales)
{
    for (const WorkloadSpec &spec : allWorkloads()) {
        const Program test_prog = buildWorkload(spec, spec.testScale);
        EXPECT_GT(test_prog.text.size(), 10u) << spec.name;
        // The scale constant's li may expand to either one or two
        // instructions, but nothing else may change with scale.
        const Program full_prog = buildWorkload(spec);
        EXPECT_NEAR(static_cast<double>(full_prog.text.size()),
                    static_cast<double>(test_prog.text.size()), 1.0)
            << spec.name;
    }
}

TEST(Workloads, TracesAreDeterministic)
{
    for (const WorkloadSpec &spec : allWorkloads()) {
        std::uint32_t c1 = 0, c2 = 0;
        const auto t1 = traceWorkload(spec, spec.testScale, &c1);
        const auto t2 = traceWorkload(spec, spec.testScale, &c2);
        EXPECT_EQ(c1, c2) << spec.name;
        EXPECT_EQ(t1.size(), t2.size()) << spec.name;
    }
}

TEST(Workloads, MixesAreCharacteristic)
{
    for (const WorkloadSpec &spec : allWorkloads()) {
        VectorTraceSource trace = traceWorkload(spec, spec.testScale);
        TraceStats stats;
        stats.accountAll(trace);
        // Every analogue loads, stores, and branches.
        EXPECT_GT(stats.pctLoads(), 1.0) << spec.name;
        EXPECT_GT(stats.countOf(OpClass::Store), 0u) << spec.name;
        // Conditional branch share in the paper's Table 2 band (9-28%),
        // loosened to 5-35% for the analogues.
        EXPECT_GT(stats.pctCondBranches(), 5.0) << spec.name;
        EXPECT_LT(stats.pctCondBranches(), 35.0) << spec.name;
    }
}

TEST(Workloads, CallHeavyBenchmarksUseCalls)
{
    // eqntott calls its comparator indirectly (qsort style); go and
    // ijpeg use direct calls.  Every call of either kind returns.
    for (const char *name : {"eqntott", "go", "ijpeg"}) {
        VectorTraceSource trace =
            traceWorkload(findWorkload(name), findWorkload(name).testScale);
        TraceStats stats;
        stats.accountAll(trace);
        const std::uint64_t calls = stats.countOf(OpClass::Call) +
            stats.countOf(OpClass::CallIndirect);
        EXPECT_GT(calls, 0u) << name;
        EXPECT_EQ(calls, stats.countOf(OpClass::Ret)) << name;
    }
    VectorTraceSource trace =
        traceWorkload(findWorkload("eqntott"),
                      findWorkload("eqntott").testScale);
    TraceStats stats;
    stats.accountAll(trace);
    EXPECT_GT(stats.countOf(OpClass::CallIndirect), 0u);
    // And li dispatches through its jump table.
    VectorTraceSource li_trace =
        traceWorkload(findWorkload("li"), findWorkload("li").testScale);
    TraceStats li_stats;
    li_stats.accountAll(li_trace);
    EXPECT_GT(li_stats.countOf(OpClass::IndirectJump), 0u);
}

} // anonymous namespace
} // namespace ddsc
