/**
 * @file
 * Fuzz-style pinning of the wire::Reader contract: decoding hostile
 * bytes never throws, never reads out of bounds, and never succeeds
 * on a strict prefix of a valid encoding.
 *
 * The three codecs that cross trust boundaries (the result store file
 * and the DDSN wire protocol) are exercised: SchedStats (the full
 * record), CollapseStats (nested maps with string keys), and
 * Histogram (length-prefixed bins).  For each one:
 *
 *  - every strict prefix of a valid encoding must decode to false;
 *  - corrupting any length-prefix byte to claim a huge count must
 *    decode to false without allocating the claimed length;
 *  - flipping every single byte (any position, any value class) must
 *    never throw — a flipped payload byte may still decode, but it
 *    must do so without UB.
 */

#include <gtest/gtest.h>

#include <string>

#include "collapse/collapse_stats.hh"
#include "core/sched_stats.hh"
#include "net/protocol.hh"
#include "sim/result_store.hh"
#include "support/stats.hh"
#include "support/wire.hh"

namespace ddsc
{
namespace
{

Histogram
sampleHistogram()
{
    Histogram h;
    h.add(1, 3);
    h.add(4, 7);
    h.add(2048, 1);
    return h;
}

CollapseStats
sampleCollapse()
{
    CollapseStats stats;
    CollapseEvent pair;
    pair.category = CollapseCategory::ThreeOne;
    pair.groupSize = 2;
    pair.signature = "arri-brc";
    pair.distances = {1, 0};
    pair.distanceCount = 1;
    stats.record(pair);

    CollapseEvent triple;
    triple.category = CollapseCategory::FourOne;
    triple.groupSize = 3;
    triple.signature = "arri-arri-brc";
    triple.distances = {2, 5};
    triple.distanceCount = 2;
    stats.record(triple);
    stats.noteCollapsedInstruction();
    return stats;
}

SchedStats
sampleSchedStats()
{
    SchedStats stats;
    stats.instructions = 123456;
    stats.cycles = 4321;
    stats.condBranches = 999;
    stats.mispredicts = 42;
    stats.ctiPredictions = 1000;
    stats.ctiMispredicts = 57;
    stats.loads = 300;
    for (unsigned i = 0; i < kNumLoadClasses; ++i)
        stats.loadClasses[i] = 10 + i;
    stats.eliminatedInstructions = 17;
    stats.valuePredHits = 80;
    stats.valuePredWrong = 20;
    stats.collapse = sampleCollapse();
    stats.issuedPerCycle = sampleHistogram();
    stats.wallNanos = 987654321;
    return stats;
}

/** Decode one encoding of type T via @p decode; used generically for
 *  all three codecs. */
template <typename Decoder>
void
expectEveryPrefixFails(const std::string &encoded, Decoder decode)
{
    for (std::size_t len = 0; len < encoded.size(); ++len) {
        support::wire::Reader reader(
            std::string_view(encoded).substr(0, len));
        EXPECT_FALSE(decode(reader)) << "prefix of " << len
                                     << " of " << encoded.size()
                                     << " bytes decoded";
        EXPECT_FALSE(reader.ok()) << "prefix " << len;
    }
}

template <typename Decoder>
void
expectNoByteFlipThrows(const std::string &encoded, Decoder decode)
{
    // Three value classes per position: huge (length-bomb), zero, and
    // a bit flip.  Each must decode or fail cleanly, never throw or
    // overread (the Reader is bounds-checked; ASan/TSan CI would
    // flag an escape).
    for (std::size_t pos = 0; pos < encoded.size(); ++pos) {
        for (const unsigned char value :
             {static_cast<unsigned char>(0xff),
              static_cast<unsigned char>(0x00),
              static_cast<unsigned char>(
                  static_cast<unsigned char>(encoded[pos]) ^ 0x40u)}) {
            std::string corrupt = encoded;
            corrupt[pos] = static_cast<char>(value);
            support::wire::Reader reader(corrupt);
            EXPECT_NO_THROW((void)decode(reader))
                << "byte " << pos << " set to "
                << static_cast<unsigned>(value);
        }
    }
}

TEST(WireFuzz, HistogramPrefixTruncationAlwaysFails)
{
    std::string encoded;
    sampleHistogram().encode(encoded);
    expectEveryPrefixFails(encoded, [](support::wire::Reader &in) {
        Histogram h;
        return h.decode(in);
    });
}

TEST(WireFuzz, HistogramCorruptedLengthNeverOverreads)
{
    std::string encoded;
    sampleHistogram().encode(encoded);
    // The first 8 bytes are the bin count; claim ~2^64 bins.
    for (std::size_t pos = 0; pos < 8; ++pos) {
        std::string corrupt = encoded;
        corrupt[pos] = '\xff';
        support::wire::Reader reader(corrupt);
        Histogram h;
        EXPECT_FALSE(h.decode(reader));
    }
    expectNoByteFlipThrows(encoded, [](support::wire::Reader &in) {
        Histogram h;
        return h.decode(in);
    });
}

TEST(WireFuzz, CollapseStatsPrefixTruncationAlwaysFails)
{
    std::string encoded;
    sampleCollapse().encode(encoded);
    expectEveryPrefixFails(encoded, [](support::wire::Reader &in) {
        CollapseStats stats;
        return stats.decode(in);
    });
}

TEST(WireFuzz, CollapseStatsByteCorruptionNeverThrows)
{
    std::string encoded;
    sampleCollapse().encode(encoded);
    expectNoByteFlipThrows(encoded, [](support::wire::Reader &in) {
        CollapseStats stats;
        return stats.decode(in);
    });
}

TEST(WireFuzz, SchedStatsPrefixTruncationAlwaysFails)
{
    std::string encoded;
    encodeSchedStats(encoded, sampleSchedStats());
    expectEveryPrefixFails(encoded, [](support::wire::Reader &in) {
        SchedStats stats;
        return decodeSchedStats(in, stats);
    });
}

TEST(WireFuzz, SchedStatsByteCorruptionNeverThrows)
{
    std::string encoded;
    encodeSchedStats(encoded, sampleSchedStats());
    expectNoByteFlipThrows(encoded, [](support::wire::Reader &in) {
        SchedStats stats;
        return decodeSchedStats(in, stats);
    });
}

TEST(WireFuzz, RoundTripsStillWork)
{
    // The fuzzing above is only meaningful if the encodings are valid
    // in the first place.
    {
        std::string encoded;
        sampleHistogram().encode(encoded);
        support::wire::Reader reader(encoded);
        Histogram h;
        ASSERT_TRUE(h.decode(reader));
        EXPECT_EQ(h.samples(), sampleHistogram().samples());
        EXPECT_EQ(reader.remaining(), 0u);
    }
    {
        std::string encoded;
        sampleCollapse().encode(encoded);
        support::wire::Reader reader(encoded);
        CollapseStats stats;
        ASSERT_TRUE(stats.decode(reader));
        EXPECT_EQ(stats.events(), sampleCollapse().events());
        EXPECT_EQ(reader.remaining(), 0u);
    }
    {
        std::string encoded;
        encodeSchedStats(encoded, sampleSchedStats());
        support::wire::Reader reader(encoded);
        SchedStats stats;
        ASSERT_TRUE(decodeSchedStats(reader, stats));
        EXPECT_EQ(stats.instructions, sampleSchedStats().instructions);
        EXPECT_EQ(reader.remaining(), 0u);
    }
}

// --- DDSN v4 fleet frames -------------------------------------------
// CellsBatch (router→shard fan-out), CellsReplyMsg (shard→router
// per-cell stats), and HealthInfo with per-shard entries (router
// aggregated health) all cross the same trust boundary as the frames
// above and get the same treatment.

net::CellsBatch
sampleBatch()
{
    net::CellsBatch batch;
    for (const char *name : {"li", "go", "espresso"}) {
        net::CellRef ref;
        ref.workload = name;
        ref.config = 'D';
        ref.width = 16;
        batch.cells.push_back(ref);
    }
    batch.deadlineMs = 1500;
    return batch;
}

net::CellsReplyMsg
sampleCellsReply()
{
    net::CellsReplyMsg msg;
    net::CellOutcome ok;
    ok.cell.workload = "li";
    ok.cell.config = 'D';
    ok.cell.width = 16;
    ok.ok = 1;
    ok.stats = sampleSchedStats();
    msg.cells.push_back(ok);

    net::CellOutcome failed;
    failed.cell.workload = "go";
    failed.cell.config = 'E';
    failed.cell.width = 8;
    failed.ok = 0;
    failed.failure.key = "go/E/8";
    failed.failure.message = "injected fault: cell-throw";
    failed.failure.attempts = 3;
    msg.cells.push_back(failed);

    msg.simulated = 5;
    msg.storeHits = 2;
    msg.coalesced = 1;
    return msg;
}

net::HealthInfo
sampleFleetHealth()
{
    net::HealthInfo hi;
    hi.uptimeMs = 123456;
    hi.liveSessions = 3;
    hi.quarantinedCells = 1;
    hi.storeRecords = 44;
    for (unsigned i = 0; i < 3; ++i) {
        net::ShardHealth sh;
        sh.index = i;
        sh.state = static_cast<std::uint8_t>(i);    // one of each
        sh.generation = 2 * i;
        sh.restarts = i;
        sh.storeRecords = 10 + i;
        sh.port = i == 1 ? 0 : 40000 + i;
        hi.shards.push_back(sh);
    }
    return hi;
}

TEST(WireFuzz, CellsBatchPrefixTruncationAlwaysFails)
{
    std::string encoded;
    sampleBatch().encode(encoded);
    expectEveryPrefixFails(encoded, [](support::wire::Reader &in) {
        net::CellsBatch batch;
        return batch.decode(in);
    });
}

TEST(WireFuzz, CellsBatchLengthBombNeverOverallocates)
{
    std::string encoded;
    sampleBatch().encode(encoded);
    // The cell count leads the payload; claim ~2^64 cells.  The
    // kMaxCells cap has to reject it before any reserve().
    for (std::size_t pos = 0; pos < 8 && pos < encoded.size(); ++pos) {
        std::string corrupt = encoded;
        corrupt[pos] = '\xff';
        support::wire::Reader reader(corrupt);
        net::CellsBatch batch;
        EXPECT_FALSE(batch.decode(reader)) << "length byte " << pos;
    }
    expectNoByteFlipThrows(encoded, [](support::wire::Reader &in) {
        net::CellsBatch batch;
        return batch.decode(in);
    });
}

TEST(WireFuzz, CellsReplyPrefixTruncationAlwaysFails)
{
    std::string encoded;
    sampleCellsReply().encode(encoded);
    expectEveryPrefixFails(encoded, [](support::wire::Reader &in) {
        net::CellsReplyMsg msg;
        return msg.decode(in);
    });
}

TEST(WireFuzz, CellsReplyByteCorruptionNeverThrows)
{
    std::string encoded;
    sampleCellsReply().encode(encoded);
    expectNoByteFlipThrows(encoded, [](support::wire::Reader &in) {
        net::CellsReplyMsg msg;
        return msg.decode(in);
    });
}

TEST(WireFuzz, FleetHealthPrefixTruncationAlwaysFails)
{
    std::string encoded;
    sampleFleetHealth().encode(encoded);
    expectEveryPrefixFails(encoded, [](support::wire::Reader &in) {
        net::HealthInfo hi;
        return hi.decode(in);
    });
}

TEST(WireFuzz, FleetHealthByteCorruptionNeverThrows)
{
    std::string encoded;
    sampleFleetHealth().encode(encoded);
    expectNoByteFlipThrows(encoded, [](support::wire::Reader &in) {
        net::HealthInfo hi;
        return hi.decode(in);
    });
}

TEST(WireFuzz, FleetFramesRoundTrip)
{
    {
        std::string encoded;
        sampleBatch().encode(encoded);
        support::wire::Reader reader(encoded);
        net::CellsBatch batch;
        ASSERT_TRUE(batch.decode(reader));
        EXPECT_EQ(reader.remaining(), 0u);
        ASSERT_EQ(batch.cells.size(), 3u);
        EXPECT_EQ(batch.cells[2].workload, "espresso");
        EXPECT_EQ(batch.cells[0].config, 'D');
        EXPECT_EQ(batch.cells[0].width, 16u);
        EXPECT_EQ(batch.deadlineMs, 1500u);
    }
    {
        std::string encoded;
        sampleCellsReply().encode(encoded);
        support::wire::Reader reader(encoded);
        net::CellsReplyMsg msg;
        ASSERT_TRUE(msg.decode(reader));
        EXPECT_EQ(reader.remaining(), 0u);
        ASSERT_EQ(msg.cells.size(), 2u);
        EXPECT_EQ(msg.cells[0].ok, 1);
        EXPECT_EQ(msg.cells[0].stats.instructions,
                  sampleSchedStats().instructions);
        EXPECT_EQ(msg.cells[1].ok, 0);
        EXPECT_EQ(msg.cells[1].failure.key, "go/E/8");
        EXPECT_EQ(msg.cells[1].failure.attempts, 3u);
        EXPECT_EQ(msg.simulated, 5u);
    }
    {
        std::string encoded;
        sampleFleetHealth().encode(encoded);
        support::wire::Reader reader(encoded);
        net::HealthInfo hi;
        ASSERT_TRUE(hi.decode(reader));
        EXPECT_EQ(reader.remaining(), 0u);
        ASSERT_EQ(hi.shards.size(), 3u);
        EXPECT_EQ(hi.shards[1].state, 1);
        EXPECT_EQ(hi.shards[2].generation, 4u);
        EXPECT_EQ(hi.shards[2].storeRecords, 12u);
    }
}

// --- DDSN v5 error frames -------------------------------------------
// ErrorMsg grew a trailing retryAfterMs hint in protocol v5, and the
// Cancelled code joined the typed set.  The trailer is deliberately
// decode-lenient: a v4-shaped frame (no trailer) must still decode
// with hint 0, because the overload shed fires before version
// negotiation and a v4 client may be on the other end.  That makes
// ErrorMsg the one codec here whose prefix-truncation rule has a
// single sanctioned exception — the exact v4 boundary.

net::ErrorMsg
sampleShed()
{
    net::ErrorMsg err;
    err.code = net::ErrCode::Overloaded;
    err.message = "admission queue full; retry shortly";
    err.retryAfterMs = 125;
    return err;
}

net::ErrorMsg
sampleCancelled()
{
    net::ErrorMsg err;
    err.code = net::ErrCode::Cancelled;
    err.message = "cell li/A/4 cancelled: deadline exceeded";
    err.retryAfterMs = 0;
    return err;
}

TEST(WireFuzz, ErrorMsgV5RoundTripsCancelledAndRetryHint)
{
    {
        std::string encoded;
        sampleShed().encode(encoded);
        support::wire::Reader reader(encoded);
        net::ErrorMsg err;
        ASSERT_TRUE(err.decode(reader));
        EXPECT_EQ(reader.remaining(), 0u);
        EXPECT_EQ(err.code, net::ErrCode::Overloaded);
        EXPECT_EQ(err.message, sampleShed().message);
        EXPECT_EQ(err.retryAfterMs, 125u);
    }
    {
        std::string encoded;
        sampleCancelled().encode(encoded);
        support::wire::Reader reader(encoded);
        net::ErrorMsg err;
        ASSERT_TRUE(err.decode(reader));
        EXPECT_EQ(reader.remaining(), 0u);
        EXPECT_EQ(err.code, net::ErrCode::Cancelled);
        EXPECT_EQ(err.message, sampleCancelled().message);
        EXPECT_EQ(err.retryAfterMs, 0u);
    }
}

TEST(WireFuzz, ErrorMsgPrefixTruncationFailsExceptV4Boundary)
{
    std::string encoded;
    sampleShed().encode(encoded);
    ASSERT_GT(encoded.size(), 8u);
    const std::size_t v4len = encoded.size() - 8;   // sans trailer
    for (std::size_t len = 0; len < encoded.size(); ++len) {
        support::wire::Reader reader(
            std::string_view(encoded).substr(0, len));
        net::ErrorMsg err;
        const bool decoded = err.decode(reader);
        if (len == v4len) {
            // The sanctioned downgrade: a v4 client's frame.  Same
            // code and message, hint defaults to 0 ("no hint"), and
            // the reader consumed everything cleanly.
            EXPECT_TRUE(decoded);
            EXPECT_TRUE(reader.ok());
            EXPECT_EQ(err.code, net::ErrCode::Overloaded);
            EXPECT_EQ(err.message, sampleShed().message);
            EXPECT_EQ(err.retryAfterMs, 0u);
        } else {
            EXPECT_FALSE(decoded) << "prefix of " << len
                                  << " of " << encoded.size()
                                  << " bytes decoded";
        }
    }
}

TEST(WireFuzz, ErrorMsgByteCorruptionNeverThrows)
{
    std::string encoded;
    sampleShed().encode(encoded);
    expectNoByteFlipThrows(encoded, [](support::wire::Reader &in) {
        net::ErrorMsg err;
        return err.decode(in);
    });
}

TEST(WireFuzz, ErrorMsgLengthBombNeverOverallocates)
{
    std::string encoded;
    sampleShed().encode(encoded);
    // The message length prefix sits right after the 1-byte code.
    std::string bomb = encoded;
    bomb[1] = static_cast<char>(0xff);
    bomb[2] = static_cast<char>(0xff);
    bomb[3] = static_cast<char>(0xff);
    bomb[4] = static_cast<char>(0x7f);
    support::wire::Reader reader(bomb);
    net::ErrorMsg err;
    EXPECT_FALSE(err.decode(reader));
    EXPECT_LE(err.message.capacity(), 1u << 20);
}

TEST(WireFuzz, ReaderZeroFillsAfterFirstFailure)
{
    std::string encoded;
    support::wire::putU32(encoded, 7);
    support::wire::Reader reader(encoded);
    EXPECT_EQ(reader.u32(), 7u);
    EXPECT_EQ(reader.u64(), 0u);    // past the end: latches false
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.u8(), 0u);     // stays zero forever after
    EXPECT_EQ(reader.str(), "");
    EXPECT_FALSE(reader.ok());
}

} // anonymous namespace
} // namespace ddsc
