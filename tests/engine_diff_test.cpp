/**
 * @file
 * Differential validation of the event-driven scheduler engine against
 * the naive O(window)-per-cycle reference engine.  Both share the
 * window-construction and constraint semantics but find ready
 * instructions through completely different machinery (bound heaps vs
 * exhaustive scans), so agreement across random traces, workload
 * traces, configurations, and widths is strong evidence that the
 * lower-bound bookkeeping never perturbs timing.
 */

#include <gtest/gtest.h>

#include "core/scheduler.hh"
#include "trace/synthetic.hh"
#include "workloads/workloads.hh"

namespace ddsc
{
namespace
{

void
expectSameStats(const SchedStats &fast, const SchedStats &naive,
                const std::string &what)
{
    EXPECT_EQ(fast.cycles, naive.cycles) << what;
    EXPECT_EQ(fast.instructions, naive.instructions) << what;
    EXPECT_EQ(fast.mispredicts, naive.mispredicts) << what;
    EXPECT_EQ(fast.loads, naive.loads) << what;
    for (unsigned c = 0; c < kNumLoadClasses; ++c)
        EXPECT_EQ(fast.loadClasses[c], naive.loadClasses[c])
            << what << " class " << c;
    EXPECT_EQ(fast.valuePredHits, naive.valuePredHits) << what;
    EXPECT_EQ(fast.valuePredWrong, naive.valuePredWrong) << what;
    EXPECT_EQ(fast.collapse.events(), naive.collapse.events()) << what;
    EXPECT_EQ(fast.collapse.collapsedInstructions(),
              naive.collapse.collapsedInstructions()) << what;
}

void
diffOnConfig(TraceSource &trace, const MachineConfig &fast_config,
             const std::string &what)
{
    MachineConfig naive_config = fast_config;
    naive_config.naiveEngine = true;

    trace.reset();
    LimitScheduler fast(fast_config);
    const SchedStats fast_stats = fast.run(trace);

    trace.reset();
    LimitScheduler naive(naive_config);
    const SchedStats naive_stats = naive.run(trace);

    expectSameStats(fast_stats, naive_stats, what);
}

void
diffOn(TraceSource &trace, char config, unsigned width,
       const std::string &what)
{
    diffOnConfig(trace, MachineConfig::paper(config, width), what);
}

struct DiffParam
{
    std::uint64_t seed;
    char config;
    unsigned width;
};

class EngineDiff : public testing::TestWithParam<DiffParam>
{
};

TEST_P(EngineDiff, RandomTracesAgree)
{
    const DiffParam param = GetParam();
    SyntheticTraceConfig config;
    config.instructions = 20000;
    config.seed = param.seed;
    VectorTraceSource trace = generateSynthetic(config);
    diffOn(trace, param.config, param.width,
           std::string("seed ") + std::to_string(param.seed) +
           " config " + param.config + " width " +
           std::to_string(param.width));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineDiff,
    testing::Values(
        DiffParam{1, 'A', 4}, DiffParam{1, 'B', 4},
        DiffParam{1, 'C', 4}, DiffParam{1, 'D', 4},
        DiffParam{1, 'E', 4},
        DiffParam{2, 'A', 16}, DiffParam{2, 'B', 16},
        DiffParam{2, 'C', 16}, DiffParam{2, 'D', 16},
        DiffParam{2, 'E', 16},
        DiffParam{3, 'D', 1}, DiffParam{3, 'D', 2},
        DiffParam{3, 'D', 64}, DiffParam{3, 'E', 128},
        DiffParam{4, 'D', 8}, DiffParam{5, 'D', 8},
        DiffParam{6, 'B', 32}, DiffParam{7, 'C', 32}));

TEST(EngineDiff, PointerHeavySynthetic)
{
    SyntheticTraceConfig config;
    config.instructions = 15000;
    config.seed = 99;
    config.strideFraction = 0.0;    // all loads pointer-like
    config.loadFraction = 0.4;
    VectorTraceSource trace = generateSynthetic(config);
    for (const char c : {'B', 'D'})
        diffOn(trace, c, 8, std::string("pointer-heavy ") + c);
}

TEST(EngineDiff, MispredictHeavySynthetic)
{
    SyntheticTraceConfig config;
    config.instructions = 15000;
    config.seed = 100;
    config.takenBias = 0.5;         // coin-flip branches
    config.branchFraction = 0.3;
    VectorTraceSource trace = generateSynthetic(config);
    for (const char c : {'A', 'D'})
        diffOn(trace, c, 16, std::string("mispredict-heavy ") + c);
}

TEST(EngineDiff, WorkloadTracesAgree)
{
    for (const char *name : {"li", "espresso", "go"}) {
        const WorkloadSpec &spec = findWorkload(name);
        VectorTraceSource trace = traceWorkload(spec, spec.testScale);
        for (const char c : {'A', 'D', 'E'})
            diffOn(trace, c, 8, std::string(name) + " " + c);
    }
}

TEST(EngineDiff, ValuePredictionOnlyConfig)
{
    // Value prediction without address-based load speculation:
    // insert() queues loads for classification whenever either is on,
    // but the naive engine used to gate its classification scan on
    // loadSpec alone, silently skipping classification (loads and
    // valuePredHits/Wrong stayed 0 and the timing diverged).  Both
    // engines must classify, count, and speculate identically.
    SyntheticTraceConfig trace_config;
    trace_config.instructions = 15000;
    trace_config.seed = 102;
    trace_config.loadFraction = 0.35;
    VectorTraceSource trace = generateSynthetic(trace_config);

    for (const unsigned width : {4u, 16u}) {
        MachineConfig config = MachineConfig::paper('A', width);
        config.loadValuePrediction = true;
        ASSERT_EQ(config.loadSpec, LoadSpecMode::None);
        diffOnConfig(trace, config,
                     "value-prediction-only width " +
                     std::to_string(width));

        // The classification path must actually fire: a run with
        // loads cannot report zero classified loads.
        trace.reset();
        LimitScheduler sched(config);
        const SchedStats stats = sched.run(trace);
        EXPECT_GT(stats.loads, 0u) << "width " << width;
        EXPECT_GT(stats.valuePredHits + stats.valuePredWrong, 0u)
            << "width " << width;
    }
}

TEST(EngineDiff, DivideChains)
{
    // Long-latency chains exercise the bound propagation hardest.
    SyntheticTraceConfig config;
    config.instructions = 5000;
    config.seed = 101;
    config.divFraction = 0.2;
    config.mulFraction = 0.2;
    VectorTraceSource trace = generateSynthetic(config);
    diffOn(trace, 'D', 4, "divide chains");
}

} // anonymous namespace
} // namespace ddsc
