/**
 * @file
 * Tests for the DDSCTRC v4 blocked layout: writer geometry, the
 * streaming and mmap'd readers' corruption diagnostics (block-accurate
 * truncation, lazy per-block CRCs, trailing garbage, length-bomb
 * headers), close-time durability, LRU residency/eviction, and
 * mapped-vs-vector digest identity under concurrent cursors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "support/fault.hh"
#include "support/wire.hh"
#include "test_helpers.hh"
#include "trace/format.hh"
#include "trace/mapped.hh"
#include "trace/record.hh"
#include "trace/source.hh"

namespace ddsc
{
namespace
{

using test::aluImm;

// One-page blocks keep the fixtures small: 4096 / 40 = 102 records
// per block, so ~250 records already span three blocks with a partial
// tail.
constexpr std::uint32_t kBlock = 4096;
constexpr std::uint64_t kPerBlock = kBlock / 40;

std::vector<TraceRecord>
sampleRecords(std::size_t n)
{
    std::vector<TraceRecord> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        records.push_back(aluImm(Opcode::ADD, 3, 1,
                                 static_cast<std::int32_t>(i),
                                 0x10000 + 4 * i));
    }
    return records;
}

/** Write @p n sample records as a v4 file with one-page blocks. */
std::string
writeV4(const std::string &name, std::size_t n,
        std::uint32_t blockSize = kBlock)
{
    const std::string path = testing::TempDir() + "/" + name;
    TraceFileWriter writer(path, 4, blockSize);
    for (const TraceRecord &rec : sampleRecords(n))
        writer.emit(rec);
    writer.close();
    return path;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
spew(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Fold @p src's full stream through the shared record digest. */
std::uint64_t
walkDigest(const SharedTrace &src, std::uint64_t *walked = nullptr)
{
    RecordDigest digest;
    const std::unique_ptr<TraceSource> cursor = src.cursor();
    TraceRecord rec;
    std::uint64_t n = 0;
    while (cursor->next(rec)) {
        digest.add(rec);
        ++n;
    }
    if (walked)
        *walked = n;
    return digest.value();
}

TEST(V4Layout, BlockedGeometryOnDisk)
{
    // 250 records, 102 per block: 3 blocks, the last holding 46.
    const std::string path = writeV4("v4_layout.trc", 250);
    const std::string bytes = slurp(path);
    const std::size_t blocks = 3;
    EXPECT_EQ(bytes.size(),
              4096 + blocks * kBlock + 16 + blocks * 4 + 4);
    EXPECT_EQ(bytes.substr(0, 8), "DDSCTRC1");
    // Version 4, little-endian, right after the magic.
    EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 4);
    EXPECT_EQ(bytes.substr(4096 + blocks * kBlock, 8), "DDSCEOF1");
    TraceFileSource reader(path);
    EXPECT_EQ(reader.version(), 4u);
    EXPECT_EQ(reader.count(), 250u);
    std::remove(path.c_str());
}

TEST(V4Layout, StreamingReaderRoundTripsAcrossBlocks)
{
    const std::string path = writeV4("v4_stream_rt.trc", 250);
    TraceFileSource reader(path);
    TraceRecord rec;
    for (unsigned i = 0; i < 250; ++i) {
        ASSERT_TRUE(reader.next(rec)) << "record " << i;
        EXPECT_EQ(rec.imm, static_cast<std::int32_t>(i));
    }
    EXPECT_FALSE(reader.next(rec));
    reader.reset();
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.imm, 0);
    std::remove(path.c_str());
}

TEST(V4Layout, EmptyTraceRoundTrips)
{
    const std::string path = writeV4("v4_empty.trc", 0);
    TraceFileSource reader(path);
    EXPECT_EQ(reader.count(), 0u);
    TraceRecord rec;
    EXPECT_FALSE(reader.next(rec));

    MappedTraceSource mapped(path);
    EXPECT_EQ(mapped.recordCount(), 0u);
    EXPECT_FALSE(mapped.cursor()->next(rec));
    std::remove(path.c_str());
}

TEST(Mapped, CursorMatchesVectorPathBitForBit)
{
    const std::vector<TraceRecord> records = sampleRecords(250);
    const std::string path = writeV4("v4_equiv.trc", 250);

    const VectorTraceSource vec(records);
    MappedTraceSource mapped(path);
    EXPECT_EQ(mapped.recordCount(), vec.recordCount());
    // The O(1) header digest, the cursor-refolded digest, and the
    // vector path's digest must all be the same number.
    EXPECT_EQ(mapped.digest(), vec.digest());
    std::uint64_t walked = 0;
    EXPECT_EQ(walkDigest(mapped, &walked), vec.digest());
    EXPECT_EQ(walked, 250u);

    // Field-level spot check across a block boundary.
    const std::unique_ptr<TraceSource> cursor = mapped.cursor();
    TraceRecord rec;
    for (unsigned i = 0; i < 250; ++i) {
        ASSERT_TRUE(cursor->next(rec));
        EXPECT_EQ(rec.pc, records[i].pc);
        EXPECT_EQ(rec.imm, records[i].imm);
        EXPECT_EQ(rec.op, records[i].op);
    }
    EXPECT_FALSE(cursor->next(rec));
    std::remove(path.c_str());
}

TEST(Mapped, IndependentAndConcurrentCursors)
{
    const std::string path = writeV4("v4_cursors.trc", 250);
    MappedTraceSource mapped(path);
    const std::uint64_t expect = mapped.digest();

    // Two interleaved cursors do not disturb each other.
    const std::unique_ptr<TraceSource> a = mapped.cursor();
    const std::unique_ptr<TraceSource> b = mapped.cursor();
    TraceRecord ra, rb;
    ASSERT_TRUE(a->next(ra));
    ASSERT_TRUE(a->next(ra));
    ASSERT_TRUE(b->next(rb));
    EXPECT_EQ(rb.imm, 0);
    EXPECT_EQ(ra.imm, 1);

    // Racing full walks (also racing the lazy block validation) all
    // see the same stream.
    std::vector<std::thread> threads;
    std::vector<std::uint64_t> digests(4, 0);
    for (unsigned t = 0; t < 4; ++t) {
        threads.emplace_back([&mapped, &digests, t]() {
            digests[t] = walkDigest(mapped);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (const std::uint64_t d : digests)
        EXPECT_EQ(d, expect);
    std::remove(path.c_str());
}

TEST(Mapped, ProbeReadsHeaderWithoutValidatingBody)
{
    const std::string path = writeV4("v4_probe.trc", 250);
    std::uint64_t digest = 0, count = 0;
    EXPECT_TRUE(MappedTraceSource::probe(path, &digest, &count));
    EXPECT_EQ(count, 250u);
    EXPECT_EQ(digest, MappedTraceSource(path).digest());

    // v3 files and non-traces probe false, never fatal.
    const std::string v3 = testing::TempDir() + "/probe_v3.trc";
    {
        TraceFileWriter writer(v3, 3);
        writer.emit(aluImm(Opcode::ADD, 3, 1, 7, 0x10000));
    }
    EXPECT_FALSE(MappedTraceSource::probe(v3));
    EXPECT_FALSE(MappedTraceSource::probe(testing::TempDir() +
                                          "/definitely_missing.trc"));
    std::remove(path.c_str());
    std::remove(v3.c_str());
}

TEST(Mapped, EvictedPagesRefaultIdenticalBytes)
{
    const std::string path = writeV4("v4_evict.trc", 250);
    MappedTraceSource mapped(path);
    const std::uint64_t before = walkDigest(mapped);
    mapped.evict();
    EXPECT_EQ(mapped.evictions(), 1u);
    // Mid-read eviction: start a cursor, evict, finish the walk.
    RecordDigest digest;
    const std::unique_ptr<TraceSource> cursor = mapped.cursor();
    TraceRecord rec;
    for (unsigned i = 0; i < 100; ++i) {
        ASSERT_TRUE(cursor->next(rec));
        digest.add(rec);
    }
    mapped.evict();
    while (cursor->next(rec))
        digest.add(rec);
    EXPECT_EQ(digest.value(), before);
    EXPECT_EQ(mapped.evictions(), 2u);
    std::remove(path.c_str());
}

TEST(Residency, LruEvictsColdestNeverTheTouched)
{
    const std::string pa = writeV4("res_a.trc", 250);
    const std::string pb = writeV4("res_b.trc", 250);
    MappedTraceSource a(pa), b(pb);

    TraceResidencyManager residency;
    // Budget fits one trace (~16.4 KB each) but not two.
    residency.setBudgetBytes(a.mappedBytes() + 100);

    residency.touch(a);
    TraceResidencyManager::Counters c = residency.counters();
    EXPECT_EQ(c.evictions, 0u);
    EXPECT_EQ(c.residentBytes, a.mappedBytes());

    residency.touch(b);     // over budget: a (coldest) is evicted
    c = residency.counters();
    EXPECT_EQ(c.evictions, 1u);
    EXPECT_EQ(c.residentBytes, b.mappedBytes());
    EXPECT_EQ(c.mappedBytes, a.mappedBytes() + b.mappedBytes());
    EXPECT_EQ(a.evictions(), 1u);
    EXPECT_EQ(b.evictions(), 0u);

    residency.touch(a);     // LRU flips: now b goes
    c = residency.counters();
    EXPECT_EQ(c.evictions, 2u);
    EXPECT_EQ(b.evictions(), 1u);

    // An evicted trace still reads back bit-identical.
    EXPECT_EQ(walkDigest(b), b.digest());

    // A budget of zero means unlimited: both stay resident.
    TraceResidencyManager unlimited;
    unlimited.touch(a);
    unlimited.touch(b);
    c = unlimited.counters();
    EXPECT_EQ(c.evictions, 0u);
    EXPECT_EQ(c.residentBytes, a.mappedBytes() + b.mappedBytes());

    residency.forget(a);
    residency.forget(b);
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

// --- corruption diagnostics ------------------------------------------

TEST(MappedDeathTest, TruncationAtBlockBoundaryNamesTheBlock)
{
    // Cut the file exactly at the start of block 2: both readers must
    // name block 2 and its record range.
    const std::string path = writeV4("v4_trunc_block.trc", 250);
    std::string bytes = slurp(path);
    bytes.resize(4096 + 2 * kBlock);
    spew(path, bytes);
    EXPECT_EXIT({ MappedTraceSource mapped(path); },
                testing::ExitedWithCode(1),
                "promises 250 records in 3 blocks .* inside block 2 "
                "\\(records 204\\.\\.249\\)");
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1),
                "inside block 2 \\(records 204\\.\\.249\\)");
    std::remove(path.c_str());
}

TEST(MappedDeathTest, TruncationMidBlockNamesTheBlock)
{
    const std::string path = writeV4("v4_trunc_mid.trc", 250);
    std::string bytes = slurp(path);
    bytes.resize(4096 + kBlock + 17);   // 17 bytes into block 1
    spew(path, bytes);
    EXPECT_EXIT({ MappedTraceSource mapped(path); },
                testing::ExitedWithCode(1),
                "inside block 1 \\(records 102\\.\\.203\\)");
    std::remove(path.c_str());
}

TEST(MappedDeathTest, TruncationInsideFooterIsDistinguished)
{
    const std::string path = writeV4("v4_trunc_footer.trc", 250);
    std::string bytes = slurp(path);
    bytes.resize(bytes.size() - 2);     // clip the tableCrc
    spew(path, bytes);
    EXPECT_EXIT({ MappedTraceSource mapped(path); },
                testing::ExitedWithCode(1),
                "truncated inside its footer");
    std::remove(path.c_str());
}

TEST(MappedDeathTest, TrailingGarbageAfterFooterIsRejected)
{
    const std::string path = writeV4("v4_garbage.trc", 250);
    std::string bytes = slurp(path);
    bytes += "surprise";
    spew(path, bytes);
    EXPECT_EXIT({ MappedTraceSource mapped(path); },
                testing::ExitedWithCode(1),
                "8 bytes of trailing garbage after its footer");
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1), "trailing garbage");
    std::remove(path.c_str());
}

TEST(MappedDeathTest, CorruptBlockIsDiagnosedLazilyOnEntry)
{
    // Flip one bit inside block 1's records.  Opening the map stays
    // cheap-and-successful (per-block CRCs are lazy), block 0 still
    // reads, and the fatal diagnosis fires when a cursor crosses into
    // block 1 — naming the block, record range, and byte offset.
    const std::string path = writeV4("v4_bitflip.trc", 250);
    std::string bytes = slurp(path);
    bytes[4096 + kBlock + 13] ^= 0x20;
    spew(path, bytes);

    {
        MappedTraceSource mapped(path);    // no death at open
        const std::unique_ptr<TraceSource> cursor = mapped.cursor();
        TraceRecord rec;
        for (unsigned i = 0; i < kPerBlock; ++i)
            ASSERT_TRUE(cursor->next(rec));    // block 0 is clean
        EXPECT_EQ(rec.imm, static_cast<std::int32_t>(kPerBlock - 1));
    }
    EXPECT_EXIT(
        {
            MappedTraceSource mapped(path);
            const std::unique_ptr<TraceSource> cursor = mapped.cursor();
            TraceRecord rec;
            for (unsigned i = 0; i <= kPerBlock; ++i)
                cursor->next(rec);
        },
        testing::ExitedWithCode(1),
        "corrupt: block 1 \\(records 102\\.\\.203, byte offset 8192\\)");

    // The streaming reader pins the same block (it settles CRCs as
    // the stream completes each block).
    EXPECT_EXIT(
        {
            TraceFileSource reader(path);
            TraceRecord rec;
            while (reader.next(rec)) {
            }
        },
        testing::ExitedWithCode(1), "corrupt: block 1 ");
    std::remove(path.c_str());
}

TEST(MappedDeathTest, LengthBombHeaderRejectedBeforeArithmetic)
{
    // Craft a header whose count would overflow 64-bit byte-span
    // arithmetic (count * 40 wraps).  Both readers must reject it as
    // a length bomb before computing any offset, not serve it to a
    // size check that the wrapped product would satisfy.
    const std::string path = writeV4("v4_bomb.trc", 250);
    std::string bytes = slurp(path);
    const std::uint64_t bomb = ~0ull - 7;
    std::memcpy(&bytes[16], &bomb, sizeof bomb);    // V4Header.count
    const std::uint32_t crc = support::wire::crc32(bytes.data(), 36, 0);
    std::memcpy(&bytes[36], &crc, sizeof crc);      // keep headerCrc valid
    spew(path, bytes);
    EXPECT_EXIT({ MappedTraceSource mapped(path); },
                testing::ExitedWithCode(1),
                "count field is corrupt \\(length bomb\\) and is "
                "rejected before any offset arithmetic");
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1), "length bomb");
    std::remove(path.c_str());
}

TEST(MappedDeathTest, V3LengthBombRejectedToo)
{
    const std::string path = testing::TempDir() + "/v3_bomb.trc";
    {
        TraceFileWriter writer(path, 3);
        for (const TraceRecord &rec : sampleRecords(5))
            writer.emit(rec);
    }
    std::string bytes = slurp(path);
    const std::uint64_t bomb = ~0ull / 8;
    std::memcpy(&bytes[16], &bomb, sizeof bomb);    // FileHeader.count
    spew(path, bytes);
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1), "length bomb");
    std::remove(path.c_str());
}

TEST(MappedDeathTest, MappedReaderRefusesStreamOnlyVersions)
{
    const std::string path = testing::TempDir() + "/v3_for_mmap.trc";
    {
        TraceFileWriter writer(path, 3);
        writer.emit(aluImm(Opcode::ADD, 3, 1, 7, 0x10000));
    }
    EXPECT_EXIT({ MappedTraceSource mapped(path); },
                testing::ExitedWithCode(1),
                "version 3 but the mapped reader serves only v4");
    std::remove(path.c_str());
}

#ifndef DDSC_NO_FAULT_INJECTION
TEST(MappedDeathTest, CloseTimeFlushFailureIsATornTrace)
{
    // ENOSPC/EIO surfacing only at the final fflush must still fail
    // loudly with the byte count — not report a written trace.
    const std::string path = testing::TempDir() + "/close_fail.trc";
    EXPECT_EXIT(
        {
            support::faultArm("trace-close-fail:1");
            TraceFileWriter writer(path, 4, kBlock);
            for (const TraceRecord &rec : sampleRecords(3))
                writer.emit(rec);
            writer.close();
        },
        testing::ExitedWithCode(1),
        // 4096 header + one 4096 block + 16 footer + 4 CRC + 4
        "torn at close: flushing 3 records \\(8216 bytes\\) failed "
        "\\[injected fault\\]");
    support::faultArm("");
    std::remove(path.c_str());
}
#endif // DDSC_NO_FAULT_INJECTION

} // anonymous namespace
} // namespace ddsc
