/**
 * @file
 * Failure-injection and error-path tests: panics on internal
 * invariant violations, fatal exits on bad user input, and graceful
 * handling of malformed trace files.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "core/scheduler.hh"
#include "masm/assembler.hh"
#include "support/logging.hh"
#include "support/sat_counter.hh"
#include "test_helpers.hh"
#include "trace/source.hh"
#include "vm/vm.hh"

namespace ddsc
{
namespace
{

using test::alu;
using test::aluImm;

TEST(RobustnessDeath, SatCounterRejectsBadWidth)
{
    EXPECT_DEATH({ SatCounter ctr(0); }, "bad counter width");
    EXPECT_DEATH({ SatCounter ctr(17); }, "bad counter width");
}

TEST(RobustnessDeath, SatCounterRejectsOverflowingInitial)
{
    EXPECT_DEATH({ SatCounter ctr(2, 4); }, "exceeds max");
}

TEST(RobustnessDeath, SchedulerRejectsZeroWidth)
{
    MachineConfig config;
    config.issueWidth = 0;
    EXPECT_DEATH({ LimitScheduler s(config); }, "positive");
}

TEST(RobustnessDeath, SchedulerRejectsWindowSmallerThanWidth)
{
    MachineConfig config;
    config.issueWidth = 8;
    config.windowSize = 4;
    EXPECT_DEATH({ LimitScheduler s(config); }, "window smaller");
}

TEST(RobustnessDeath, UnknownPaperConfigIsFatal)
{
    EXPECT_EXIT({ MachineConfig::paper('Z', 4); },
                testing::ExitedWithCode(1), "unknown configuration");
}

TEST(RobustnessDeath, AssembleOrDieIsFatalOnErrors)
{
    EXPECT_EXIT({ assembleOrDie("  bogus\n"); },
                testing::ExitedWithCode(1), "assembly failed");
}

TEST(RobustnessDeath, VmDivisionByZeroIsFatal)
{
    EXPECT_EXIT({
        const Program program = assembleOrDie(
            "main:\n  mov r1, 4\n  div r2, r1, r0\n  halt\n");
        Vm vm(program);
        vm.run();
    }, testing::ExitedWithCode(1), "division by zero");
}

TEST(RobustnessDeath, VmPcEscapeIsFatal)
{
    EXPECT_EXIT({
        // Fall off the end of the text segment (no halt).
        const Program program = assembleOrDie(
            "main:\n  add r1, r2, r3\n");
        Vm vm(program);
        vm.run();
    }, testing::ExitedWithCode(1), "escaped the text segment");
}

TEST(RobustnessDeath, MissingTraceFileIsFatal)
{
    EXPECT_EXIT({ TraceFileSource src("/nonexistent/foo.trc"); },
                testing::ExitedWithCode(1), "cannot open");
}

TEST(RobustnessDeath, NonTraceFileIsRejected)
{
    const std::string path = testing::TempDir() + "/not_a_trace.trc";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is definitely not a ddsc trace file at all";
    }
    EXPECT_EXIT({ TraceFileSource src(path); },
                testing::ExitedWithCode(1), "not a ddsc trace");
    std::remove(path.c_str());
}

TEST(RobustnessDeath, TruncatedTraceFileIsDetected)
{
    const std::string path = testing::TempDir() + "/truncated.trc";
    {
        TraceFileWriter writer(path);
        for (int i = 0; i < 10; ++i)
            writer.emit(alu(Opcode::ADD, 1, 2, 3));
    }
    // Chop off the last record's tail.
    {
        std::ifstream in(path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 15));
    }
    EXPECT_EXIT({
        TraceFileSource src(path);
        TraceRecord rec;
        while (src.next(rec)) {
        }
    }, testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

TEST(Robustness, WarnAndInformDoNotTerminate)
{
    warn("this is a test warning %d", 42);
    inform("this is a test info message");
    SUCCEED();
}

TEST(Robustness, SchedulerHandlesWindowLargerThanTrace)
{
    // A 2048-wide machine fed a 10-instruction trace.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 10; ++i)
        recs.push_back(alu(Opcode::ADD, 1 + i % 4, 0, 0,
                           0x10000 + 4 * i));
    VectorTraceSource trace(std::move(recs));
    LimitScheduler scheduler(MachineConfig::paper('D', 2048));
    const SchedStats stats = scheduler.run(trace);
    EXPECT_EQ(stats.instructions, 10u);
    EXPECT_EQ(stats.cycles, 1u);
}

TEST(Robustness, SchedulerIsReusableAcrossRuns)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 100; ++i)
        recs.push_back(aluImm(Opcode::ADD, 1, 1, 1, 0x10000 + 4 * i));
    VectorTraceSource trace(std::move(recs));
    LimitScheduler scheduler(MachineConfig::paper('D', 4));
    const SchedStats first = scheduler.run(trace);
    trace.reset();
    const SchedStats second = scheduler.run(trace);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.collapse.events(), second.collapse.events());
}

TEST(Robustness, EmptyProgramDataSegmentIsFine)
{
    const Program program = assembleOrDie("main:\n  halt\n");
    Vm vm(program);
    EXPECT_TRUE(vm.run().halted);
}

} // anonymous namespace
} // namespace ddsc
