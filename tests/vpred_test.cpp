/**
 * @file
 * Tests for the load-value prediction extension: the predictor itself
 * and its effect inside the scheduler (paper Figure 1.d -- removing
 * the load from the consumer's critical path entirely).
 */

#include <gtest/gtest.h>

#include "core/scheduler.hh"
#include "test_helpers.hh"
#include "trace/synthetic.hh"
#include "vpred/vpred.hh"

namespace ddsc
{
namespace
{

using test::Rec;
using test::alu;
using test::aluImm;
using test::traceOf;

constexpr std::uint64_t kPc = 0x10040;

TEST(LoadValuePredictor, ColdEntryIsUnusable)
{
    LoadValuePredictor pred;
    EXPECT_FALSE(pred.predict(kPc).usable);
    EXPECT_EQ(pred.entries(), 4096u);
}

TEST(LoadValuePredictor, LearnsAConstantValue)
{
    LoadValuePredictor pred;
    pred.update(kPc, 42);
    pred.update(kPc, 42);   // confidence 1
    EXPECT_FALSE(pred.predict(kPc).usable);
    pred.update(kPc, 42);   // confidence 2 > threshold
    const ValuePrediction p = pred.predict(kPc);
    EXPECT_TRUE(p.usable);
    EXPECT_EQ(p.value, 42u);
}

TEST(LoadValuePredictor, WrongValueCostsDouble)
{
    LoadValuePredictor pred;
    for (int i = 0; i < 5; ++i)
        pred.update(kPc, 42);
    pred.update(kPc, 43);   // confidence 3 -> 1
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(LoadValuePredictor, ChangingValuesNeverConfident)
{
    LoadValuePredictor pred;
    for (std::uint32_t v = 0; v < 100; ++v)
        pred.update(kPc, v);
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(LoadValuePredictor, ResetForgets)
{
    LoadValuePredictor pred;
    for (int i = 0; i < 5; ++i)
        pred.update(kPc, 7);
    pred.reset();
    EXPECT_FALSE(pred.predict(kPc).usable);
}

// --- scheduler integration --------------------------------------------

/** Loads of an invariant value behind a slow address chain; the
 *  dependent add is the measurement point. */
std::vector<TraceRecord>
invariantValueLoads(int count)
{
    std::vector<TraceRecord> recs;
    for (int i = 0; i < count; ++i) {
        recs.push_back(alu(Opcode::DIV, 1, 1, 2, 0x10000));
        recs.push_back(Rec(Opcode::LDW).rd(3).rs1(1).imm(0)
                       .ea(0x40000000 + 4 * i)     // changing address!
                       .pc(0x10004));
        recs.back().memValue = 777;                // invariant value
        recs.push_back(aluImm(Opcode::ADD, 4, 3, 1, 0x10008));
    }
    return recs;
}

SchedStats
runVp(std::vector<TraceRecord> records, bool vp, char config = 'A')
{
    MachineConfig cfg = MachineConfig::paper(config, 4);
    cfg.loadValuePrediction = vp;
    VectorTraceSource trace = traceOf(std::move(records));
    LimitScheduler scheduler(cfg);
    return scheduler.run(trace);
}

TEST(ValueSpeculation, InvariantValuesUnlockDependents)
{
    const auto recs = invariantValueLoads(30);
    const SchedStats off = runVp(recs, false);
    const SchedStats on = runVp(recs, true);
    EXPECT_GT(on.valuePredHits, 20u);
    EXPECT_LT(on.cycles, off.cycles);
}

TEST(ValueSpeculation, WrongPredictionsFallBackToNormalTiming)
{
    // Values cycle through 4 distinct numbers: the last-value table
    // keeps mispredicting and must never make things slower.
    std::vector<TraceRecord> recs;
    for (int i = 0; i < 30; ++i) {
        recs.push_back(alu(Opcode::DIV, 1, 1, 2, 0x10000));
        recs.push_back(Rec(Opcode::LDW).rd(3).rs1(1).imm(0)
                       .ea(0x40000000).pc(0x10004));
        recs.back().memValue = static_cast<std::uint32_t>(i % 4);
        recs.push_back(aluImm(Opcode::ADD, 4, 3, 1, 0x10008));
    }
    const SchedStats off = runVp(recs, false);
    const SchedStats on = runVp(recs, true);
    EXPECT_EQ(on.valuePredHits, 0u);
    EXPECT_EQ(on.cycles, off.cycles);
}

TEST(ValueSpeculation, ComposesWithAddressSpeculation)
{
    // Under D + value prediction, both mechanisms coexist; value
    // prediction can only help (the earlier of the two wins).
    const auto recs = invariantValueLoads(30);
    const SchedStats d = runVp(recs, false, 'D');
    const SchedStats dv = runVp(recs, true, 'D');
    EXPECT_LE(dv.cycles, d.cycles);
    EXPECT_GT(dv.valuePredHits, 0u);
}

TEST(ValueSpeculation, EnginesAgree)
{
    SyntheticTraceConfig config;
    config.instructions = 15000;
    config.seed = 55;
    VectorTraceSource trace = generateSynthetic(config);

    MachineConfig fast_cfg = MachineConfig::paper('D', 8);
    fast_cfg.loadValuePrediction = true;
    MachineConfig naive_cfg = fast_cfg;
    naive_cfg.naiveEngine = true;

    trace.reset();
    LimitScheduler fast(fast_cfg);
    const SchedStats a = fast.run(trace);
    trace.reset();
    LimitScheduler naive(naive_cfg);
    const SchedStats b = naive.run(trace);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.valuePredHits, b.valuePredHits);
    EXPECT_EQ(a.valuePredWrong, b.valuePredWrong);
}

} // anonymous namespace
} // namespace ddsc
