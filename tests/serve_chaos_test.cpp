/**
 * @file
 * Deterministic in-process chaos for the crash-only serving stack:
 * real Server generations over one durable store, a retrying Client,
 * and armed fault points.
 *
 * What the process-level soak (tools/serve_chaos.sh) proves with real
 * SIGKILLs, this file proves deterministically where a debugger can
 * reach:
 *
 *  - Watchdog: a cell held in flight past the soft budget fails its
 *    waiters — current and future — with the typed, retryable
 *    Stalled error inside the budget (not after the stall), is
 *    provisionally quarantined past the hard budget, and *self-heals*
 *    when the stuck simulation finally publishes: retrying clients
 *    converge to byte-identical output and the quarantine is empty
 *    again.
 *  - Soak: successive server generations over the same --cache-dir,
 *    each armed with a different fault (transient cell throw, torn
 *    frame, mid-response disconnect), all answered byte-identical to
 *    a clean local run through a client with retries; the store's
 *    record count never decreases across generations, and the final
 *    cold generation serves everything from the store.
 *
 * Timing: stalls are DDSC_FAULT_STALL_MS (set per-test; each gtest
 * case runs in its own process under ctest, so the latch-once env
 * read is safe), watchdog budgets are explicit — nothing here trusts
 * scheduler luck beyond "a 300 ms budget elapses well before a 3 s
 * stall ends".
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "serve/server.hh"
#include "sim/matrix_query.hh"
#include "support/fault.hh"

namespace ddsc
{
namespace
{

/** A running server on an ephemeral port, drained on destruction. */
class ServerFixture
{
  public:
    explicit ServerFixture(serve::ServerOptions opts = {})
    {
        opts.port = 0;              // ephemeral
        opts.testScale = true;      // small workloads
        if (opts.jobs == 0)
            opts.jobs = 2;
        server_ = std::make_unique<serve::Server>(opts);
        EXPECT_TRUE(server_->valid());
        thread_ = std::thread([this]() { server_->run(); });
    }

    ~ServerFixture()
    {
        server_->stop();
        thread_.join();
    }

    serve::Server &server() { return *server_; }
    std::uint16_t port() const { return server_->port(); }

  private:
    std::unique_ptr<serve::Server> server_;
    std::thread thread_;
};

MatrixQuery
smallQuery()
{
    MatrixQuery query;
    query.set = "pc";       // go + li: 4 cells for configs AD, width 4
    query.configs = "AD";
    query.widths = {4};
    query.metric = "ipc";
    return query;
}

/** Ground truth: the same query against a fresh local driver (no
 *  serving layer, no faults armed when called). */
std::string
oracleBytes(const MatrixQuery &query)
{
    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    return runMatrixQuery(local, query).render(true);
}

std::string
freshDir(const std::string &leaf)
{
    const std::string dir = testing::TempDir() + "/" + leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ServeChaos, HealthReportsGenerationAndUptime)
{
    serve::ServerOptions opts;
    opts.generation = 7;
    opts.watchdogBudgetMs = 1234;
    ServerFixture fx(opts);

    net::Client client(fx.port());
    const net::HealthInfo health = client.health();
    EXPECT_EQ(health.generation, 7u);
    EXPECT_EQ(health.liveSessions, 1u);
    EXPECT_EQ(health.quarantinedCells, 0u);
    EXPECT_EQ(health.stalledCells, 0u);
    EXPECT_EQ(health.storeRecords, 0u);     // no store attached
    // The watchdog publishes the pinned budget after its first sweep
    // (within ~100 ms); poll briefly rather than racing it.
    for (int i = 0; i < 50; ++i) {
        if (client.health().watchdogBudgetMs == 1234u)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(client.health().watchdogBudgetMs, 1234u);
}

#ifndef DDSC_NO_FAULT_INJECTION

TEST(ServeChaos, StalledCellFailsWaitersTypedThenHeals)
{
    // Ground truth before any fault is armed (the local driver shares
    // this process's fault registry).
    const MatrixQuery query = smallQuery();
    const std::string oracle = oracleBytes(query);

    // A 3 s stall against a 300 ms soft budget (hard budget 2.4 s):
    // the watchdog soft-fails waiters at ~0.3-0.4 s, provisionally
    // quarantines at ~2.4-2.5 s, and the publish at ~3 s clears it.
    ::setenv("DDSC_FAULT_STALL_MS", "3000", 1);
    support::faultArm("cell-stall:li/A/4");

    serve::ServerOptions opts;
    opts.watchdogBudgetMs = 300;
    ServerFixture fx(opts);

    // Request A owns the stalled cell's flight: it pays the full
    // stall, then gets the clean answer (its own publish cleared the
    // provisional quarantine).
    std::string ownerBytes;
    std::thread owner([&]() {
        net::Client a(fx.port());
        ownerBytes = a.matrix(query).render(true);
    });

    // Give A time to claim the cell and enter the stall.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    // Request B coalesces onto the stalled flight: it must fail with
    // the typed Stalled error promptly — around the soft budget, not
    // after the 3 s stall.
    {
        const auto before = std::chrono::steady_clock::now();
        net::Client b(fx.port());
        try {
            (void)b.matrix(query);
            FAIL() << "waiter on a stalled cell must fail typed";
        } catch (const net::ServerError &e) {
            EXPECT_EQ(e.code, net::ErrCode::Stalled);
            EXPECT_TRUE(net::errCodeRetryable(e.code));
            EXPECT_NE(std::string(e.what()).find("li/A/4"),
                      std::string::npos)
                << e.what();
        }
        const auto waited =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - before);
        EXPECT_LT(waited.count(), 2000)
            << "typed failure must beat the 3 s stall";

        // While the flight is stuck, health shows it.
        const net::HealthInfo health = b.health();
        EXPECT_GE(health.stalledCells, 1u);
    }

    // Request C retries through the stall: every attempt before the
    // owner publishes gets Stalled (including the hard-quarantine
    // window — never a silent n/a), and the first attempt after the
    // publish gets the clean, byte-identical answer.
    {
        net::RetryPolicy policy;
        policy.retries = 30;
        policy.budgetMs = 20000;
        const std::uint16_t port = fx.port();
        net::Client c([port]() { return port; }, -1, policy);
        EXPECT_EQ(c.matrix(query).render(true), oracle);
        EXPECT_GE(c.retriesUsed(), 1u);

        // The stuck simulation finished and published: the
        // provisional quarantine is gone.
        EXPECT_EQ(c.health().quarantinedCells, 0u);
        EXPECT_EQ(c.health().stalledCells, 0u);
    }

    owner.join();
    EXPECT_EQ(ownerBytes, oracle);

    support::faultArm("");
    ::unsetenv("DDSC_FAULT_STALL_MS");
}

TEST(ServeChaos, SoakAcrossGenerationsAndFaults)
{
    const MatrixQuery query = smallQuery();
    const std::string oracle = oracleBytes(query);
    const std::string cache = freshDir("ddsc_chaos_soak");

    // One fault per generation, every kind the wire and the driver
    // know: nth-form faults are transient (fire once), so with
    // retries every generation must converge to the oracle bytes.
    const std::vector<std::string> faults = {
        "",                     // clean cold start, fills the store
        "cell-throw:2",         // transient cell failure, retried
        "net-torn-frame:1",     // a frame dies mid-send
        "net-disconnect:1",     // mid-response hang-up
        "cell-throw:1",
        "",                     // clean cold finish: store answers all
    };

    std::uint64_t prevRecords = 0;
    for (std::size_t gen = 0; gen < faults.size(); ++gen) {
        support::faultArm(faults[gen]);

        serve::ServerOptions opts;
        opts.cacheDir = cache;
        opts.generation = gen;
        opts.watchdogBudgetMs = 5000;
        ServerFixture fx(opts);

        net::RetryPolicy policy;
        policy.retries = 10;
        policy.budgetMs = 60000;
        const std::uint16_t port = fx.port();
        net::Client client([port]() { return port; }, -1, policy);

        EXPECT_EQ(client.matrix(query).render(true), oracle)
            << "generation " << gen << " fault '" << faults[gen] << "'";

        const net::HealthInfo health = client.health();
        EXPECT_EQ(health.generation, gen);
        EXPECT_GE(health.storeRecords, prevRecords)
            << "the store must never lose a completed cell";
        prevRecords = health.storeRecords;

        if (gen + 1 == faults.size()) {
            // Cold final generation: everything came from the store.
            EXPECT_EQ(client.info().simulated, 0u);
            EXPECT_GE(client.info().storeHits, 4u);
        }
    }
    EXPECT_EQ(prevRecords, 4u);     // 2 workloads x 2 configs x 1 width

    support::faultArm("");
    std::filesystem::remove_all(cache);
}

#endif // DDSC_NO_FAULT_INJECTION

} // anonymous namespace
} // namespace ddsc
