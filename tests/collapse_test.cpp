/**
 * @file
 * Unit tests for dependence-expression sizing, collapse legality, and
 * signature encoding.
 */

#include <gtest/gtest.h>

#include "collapse/collapse_stats.hh"
#include "collapse/rules.hh"
#include "test_helpers.hh"

namespace ddsc
{
namespace
{

using test::Rec;
using test::alu;
using test::aluImm;
using test::branch;
using test::load;
using test::store;

TEST(ExprSize, SingleInstructions)
{
    const ExprSize add = ExprSize::of(alu(Opcode::ADD, 3, 1, 2));
    EXPECT_EQ(add.rawOperands, 2u);
    EXPECT_EQ(add.nonZeroOperands, 2u);
    EXPECT_EQ(add.instructions, 1u);

    const ExprSize addi0 = ExprSize::of(aluImm(Opcode::ADD, 3, 1, 0));
    EXPECT_EQ(addi0.rawOperands, 2u);
    EXPECT_EQ(addi0.nonZeroOperands, 1u);

    const ExprSize mv = ExprSize::of(aluImm(Opcode::MOV, 3, 0, 5));
    EXPECT_EQ(mv.rawOperands, 1u);

    const ExprSize st = ExprSize::of(store(5, 2, 4, 0));
    EXPECT_EQ(st.rawOperands, 3u);

    // The branch's one input is the cc arc itself.
    const ExprSize br = ExprSize::of(branch(Cond::EQ, true));
    EXPECT_EQ(br.rawOperands, 1u);
    EXPECT_EQ(br.nonZeroOperands, 1u);
}

TEST(ExprSize, SubstituteSingleSlot)
{
    // Rg = (Rd << Rh) + Re: 2 + 2 - 1 = 3 operands.
    const ExprSize shift = ExprSize::of(alu(Opcode::SLL, 2, 3, 4));
    const ExprSize add = ExprSize::of(alu(Opcode::ADD, 5, 2, 6));
    const ExprSize combined = ExprSize::substitute(add, shift, 1);
    EXPECT_EQ(combined.rawOperands, 3u);
    EXPECT_EQ(combined.nonZeroOperands, 3u);
    EXPECT_EQ(combined.instructions, 2u);
}

TEST(ExprSize, SubstituteBothSlots)
{
    // Rb = Ra + Rd; Rc = Rb + Rb: (Ra+Rd)+(Ra+Rd) is a 4-1 expression
    // (the paper's own example in Section 3).
    const ExprSize prod = ExprSize::of(alu(Opcode::ADD, 2, 1, 4));
    const ExprSize cons = ExprSize::of(alu(Opcode::ADD, 3, 2, 2));
    const ExprSize combined = ExprSize::substitute(cons, prod, 2);
    EXPECT_EQ(combined.rawOperands, 4u);
    EXPECT_EQ(combined.instructions, 2u);
}

TEST(Judge, PairWithinThreeOperandsIsThreeOne)
{
    CollapseRules rules;
    ExprSize e;
    e.rawOperands = 3;
    e.nonZeroOperands = 3;
    e.instructions = 2;
    CollapseCategory cat;
    ASSERT_TRUE(rules.judge(e, cat));
    EXPECT_EQ(cat, CollapseCategory::ThreeOne);
}

TEST(Judge, WidePairNeedsFourOneDevice)
{
    CollapseRules rules;
    ExprSize e;
    e.rawOperands = 4;
    e.nonZeroOperands = 4;
    e.instructions = 2;
    CollapseCategory cat;
    ASSERT_TRUE(rules.judge(e, cat));
    EXPECT_EQ(cat, CollapseCategory::FourOne);
}

TEST(Judge, TripleIsFourOne)
{
    CollapseRules rules;
    ExprSize e;
    e.rawOperands = 4;
    e.nonZeroOperands = 4;
    e.instructions = 3;
    CollapseCategory cat;
    ASSERT_TRUE(rules.judge(e, cat));
    EXPECT_EQ(cat, CollapseCategory::FourOne);
}

TEST(Judge, ZeroEnabledCollapseIsZeroOp)
{
    CollapseRules rules;
    ExprSize e;
    e.rawOperands = 5;      // too wide for the device...
    e.nonZeroOperands = 4;  // ...but fits once the zero is discarded
    e.instructions = 3;
    CollapseCategory cat;
    ASSERT_TRUE(rules.judge(e, cat));
    EXPECT_EQ(cat, CollapseCategory::ZeroOp);
}

TEST(Judge, TooManyOperandsRejected)
{
    CollapseRules rules;
    ExprSize e;
    e.rawOperands = 5;
    e.nonZeroOperands = 5;
    e.instructions = 3;
    CollapseCategory cat;
    EXPECT_FALSE(rules.judge(e, cat));
}

TEST(Judge, TooManyInstructionsRejected)
{
    CollapseRules rules;
    ExprSize e;
    e.rawOperands = 4;
    e.nonZeroOperands = 4;
    e.instructions = 4;
    CollapseCategory cat;
    EXPECT_FALSE(rules.judge(e, cat));
}

TEST(Judge, ZeroOpDetectionCanBeDisabled)
{
    CollapseRules rules;
    rules.zeroOpDetection = false;
    ExprSize e;
    e.rawOperands = 5;
    e.nonZeroOperands = 4;
    e.instructions = 3;
    CollapseCategory cat;
    EXPECT_FALSE(rules.judge(e, cat));
}

TEST(Judge, PairLimitKnob)
{
    CollapseRules rules;
    rules.maxInstructions = 2;      // pairs only (ablation)
    ExprSize e;
    e.rawOperands = 4;
    e.nonZeroOperands = 4;
    e.instructions = 3;
    CollapseCategory cat;
    EXPECT_FALSE(rules.judge(e, cat));
}

TEST(Eligibility, ProducersAreAluClassesOnly)
{
    EXPECT_TRUE(CollapseRules::producerEligible(alu(Opcode::ADD, 1, 2, 3)));
    EXPECT_TRUE(CollapseRules::producerEligible(alu(Opcode::SLL, 1, 2, 3)));
    EXPECT_TRUE(CollapseRules::producerEligible(alu(Opcode::OR, 1, 2, 3)));
    EXPECT_TRUE(CollapseRules::producerEligible(
        aluImm(Opcode::MOV, 1, 0, 5)));
    EXPECT_FALSE(CollapseRules::producerEligible(alu(Opcode::MUL, 1, 2, 3)));
    EXPECT_FALSE(CollapseRules::producerEligible(alu(Opcode::DIV, 1, 2, 3)));
    EXPECT_FALSE(CollapseRules::producerEligible(load(1, 2, 0, 0)));
}

TEST(Eligibility, ConsumersByArcKind)
{
    const TraceRecord add = alu(Opcode::ADD, 1, 2, 3);
    EXPECT_TRUE(CollapseRules::consumerEligible(add, false, false));
    EXPECT_FALSE(CollapseRules::consumerEligible(add, true, false));

    const TraceRecord ld = load(1, 2, 0, 0);
    EXPECT_TRUE(CollapseRules::consumerEligible(ld, true, false));
    EXPECT_FALSE(CollapseRules::consumerEligible(ld, false, false));

    const TraceRecord st = store(1, 2, 0, 0);
    EXPECT_TRUE(CollapseRules::consumerEligible(st, true, false));
    EXPECT_FALSE(CollapseRules::consumerEligible(st, false, false));

    const TraceRecord br = branch(Cond::EQ, true);
    EXPECT_TRUE(CollapseRules::consumerEligible(br, false, true));

    const TraceRecord mul = alu(Opcode::MUL, 1, 2, 3);
    EXPECT_FALSE(CollapseRules::consumerEligible(mul, false, false));
}

TEST(Signature, PaperEncodings)
{
    EXPECT_EQ(instructionSignature(alu(Opcode::ADD, 1, 2, 3)), "arrr");
    EXPECT_EQ(instructionSignature(aluImm(Opcode::ADD, 1, 2, 9)), "arri");
    EXPECT_EQ(instructionSignature(aluImm(Opcode::ADD, 1, 2, 0)), "arr0");
    EXPECT_EQ(instructionSignature(alu(Opcode::SUB, 1, 0, 3)), "ar0r");
    EXPECT_EQ(instructionSignature(aluImm(Opcode::SLL, 1, 2, 4)), "shri");
    EXPECT_EQ(instructionSignature(aluImm(Opcode::OR, 1, 2, 7)), "lgri");
    EXPECT_EQ(instructionSignature(alu(Opcode::AND, 1, 2, 0)), "lgr0");
    EXPECT_EQ(instructionSignature(aluImm(Opcode::MOV, 1, 0, 5)), "mvi");
    EXPECT_EQ(instructionSignature(Rec(Opcode::SETHI).rd(1).imm(0x40000)),
              "mvi");
    EXPECT_EQ(instructionSignature(
                  Rec(Opcode::MOV).rd(1).rs2(7)), "mvr");
    EXPECT_EQ(instructionSignature(load(1, 2, 0, 0)), "ldr0");
    EXPECT_EQ(instructionSignature(
                  Rec(Opcode::LDW).rd(1).rs1(2).rs2(3)), "ldrr");
    EXPECT_EQ(instructionSignature(load(1, 2, 8, 0)), "ldri");
    EXPECT_EQ(instructionSignature(store(5, 2, 8, 0)), "stri");
    EXPECT_EQ(instructionSignature(branch(Cond::NE, true)), "brc");
}

TEST(Signature, Groups)
{
    const TraceRecord a = aluImm(Opcode::ADD, 1, 2, 5);
    const TraceRecord b = branch(Cond::EQ, true);
    const TraceRecord *pair[] = {&a, &b};
    EXPECT_EQ(groupSignature(pair, 2), "arri-brc");

    const TraceRecord c = alu(Opcode::SLL, 3, 1, 4);
    const TraceRecord *triple[] = {&a, &c, &b};
    EXPECT_EQ(groupSignature(triple, 3), "arri-shrr-brc");
}

TEST(CollapseStats, CategoriesAndDistances)
{
    CollapseStats stats;
    CollapseEvent e1;
    e1.category = CollapseCategory::ThreeOne;
    e1.groupSize = 2;
    e1.signature = "arri-brc";
    e1.distances = {1, 0};
    e1.distanceCount = 1;
    stats.record(e1);
    stats.record(e1);

    CollapseEvent e2;
    e2.category = CollapseCategory::FourOne;
    e2.groupSize = 3;
    e2.signature = "arri-arri-arri";
    e2.distances = {2, 5};
    e2.distanceCount = 2;
    stats.record(e2);

    EXPECT_EQ(stats.events(), 3u);
    EXPECT_EQ(stats.eventsOf(CollapseCategory::ThreeOne), 2u);
    EXPECT_EQ(stats.eventsOf(CollapseCategory::FourOne), 1u);
    EXPECT_NEAR(stats.pctOf(CollapseCategory::ThreeOne), 66.67, 0.01);
    EXPECT_EQ(stats.pairEvents(), 2u);
    EXPECT_EQ(stats.tripleEvents(), 1u);
    EXPECT_EQ(stats.distances().samples(), 4u);
    EXPECT_EQ(stats.distances().count(1), 2u);
    EXPECT_EQ(stats.distances().count(5), 1u);
}

TEST(CollapseStats, TopSignatures)
{
    CollapseStats stats;
    CollapseEvent e;
    e.category = CollapseCategory::ThreeOne;
    e.groupSize = 2;
    e.distanceCount = 0;
    e.signature = "arri-brc";
    stats.record(e);
    stats.record(e);
    stats.record(e);
    e.signature = "shri-ldrr";
    stats.record(e);
    const auto top = stats.topSignatures(2, 5);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].first, "arri-brc");
    EXPECT_NEAR(top[0].second, 75.0, 1e-9);
    EXPECT_EQ(top[1].first, "shri-ldrr");
    EXPECT_NEAR(top[1].second, 25.0, 1e-9);
}

TEST(CollapseStats, Merge)
{
    CollapseStats a, b;
    CollapseEvent e;
    e.category = CollapseCategory::ZeroOp;
    e.groupSize = 2;
    e.signature = "lgr0-arrr";
    e.distances = {3, 0};
    e.distanceCount = 1;
    a.record(e);
    b.record(e);
    b.noteCollapsedInstruction();
    a.merge(b);
    EXPECT_EQ(a.events(), 2u);
    EXPECT_EQ(a.collapsedInstructions(), 1u);
    EXPECT_EQ(a.pairSignatures().at("lgr0-arrr"), 2u);
}

} // anonymous namespace
} // namespace ddsc
