/**
 * @file
 * The serving layer end to end: a real Server on an ephemeral
 * localhost port, driven through the real Client.
 *
 * The two load-bearing guarantees:
 *
 *  - Oracle byte-identity: for any query, the bytes the client
 *    renders equal the bytes a fresh local ddsc-matrix-style run
 *    renders.  The server adds transport and caching, never content.
 *  - Single-flight: K concurrent identical requests cost exactly one
 *    simulation per unique cell, measured at the driver (the layer
 *    below the registry being tested), not at the registry itself.
 *
 * Plus the robustness edges: overload shedding, deadline expiry,
 * version mismatch, torn frames in both directions, mid-response
 * disconnect, and drain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "serve/server.hh"
#include "sim/matrix_query.hh"
#include "support/fault.hh"

namespace ddsc
{
namespace
{

/** A running server on an ephemeral port, drained on destruction. */
class ServerFixture
{
  public:
    explicit ServerFixture(serve::ServerOptions opts = {})
    {
        opts.port = 0;              // ephemeral
        opts.testScale = true;      // small workloads
        if (opts.jobs == 0)
            opts.jobs = 2;
        server_ = std::make_unique<serve::Server>(opts);
        EXPECT_TRUE(server_->valid());
        thread_ = std::thread([this]() { server_->run(); });
    }

    ~ServerFixture()
    {
        server_->stop();
        thread_.join();
    }

    serve::Server &server() { return *server_; }
    std::uint16_t port() const { return server_->port(); }

  private:
    std::unique_ptr<serve::Server> server_;
    std::thread thread_;
};

MatrixQuery
smallQuery()
{
    MatrixQuery query;
    query.set = "pc";
    query.configs = "AD";
    query.widths = {4};
    query.metric = "ipc";
    return query;
}

TEST(Serve, OracleByteIdentity)
{
    ServerFixture fx;
    const MatrixQuery query = smallQuery();

    // Ground truth: the same query against a fresh local driver at
    // the same scale, rendered by the same code path ddsc-matrix uses.
    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    const MatrixResult fresh = runMatrixQuery(local, query);

    net::Client client(fx.port());
    const MatrixResult served = client.matrix(query);

    EXPECT_EQ(served.render(true), fresh.render(true));
    EXPECT_EQ(served.render(false), fresh.render(false));

    // Second ask: answered from the resident cache, same bytes.
    const MatrixResult again = client.matrix(query);
    EXPECT_EQ(again.render(true), fresh.render(true));
    EXPECT_EQ(again.summary.simulated, 0u);

    // Same identity for the speedup metric (reduces over the cached
    // config-A cells; nothing new simulates).
    MatrixQuery speedup = query;
    speedup.metric = "speedup";
    const MatrixResult freshSpeedup = runMatrixQuery(local, speedup);
    const MatrixResult servedSpeedup = client.matrix(speedup);
    EXPECT_EQ(servedSpeedup.render(true), freshSpeedup.render(true));
    EXPECT_EQ(servedSpeedup.render(false), freshSpeedup.render(false));
    EXPECT_EQ(servedSpeedup.summary.simulated, 0u);
}

TEST(Serve, BatchedServeMatchesLegacyBytesAndSingleFlights)
{
    // The serving path batches by default (ServerOptions.batched):
    // same-fingerprint cells of a sweep share one front-end pass.
    // Pin that two ways at once.  First, the served bytes must equal
    // a fresh local run on the *legacy* one-cell-at-a-time engine —
    // the strongest cross-engine oracle the transport can carry.
    // Second, concurrent identical sweeps must still cost exactly one
    // simulation per unique cell: CellRegistry's single-flight dedup
    // has to hold across the batch boundary, where a cell is no
    // longer an isolated task but a member of a grouped pass.
    ServerFixture fx;
    ASSERT_TRUE(fx.server().driver().batched());
    MatrixQuery query;
    query.set = "pc";
    query.configs = "AD";       // two front-end fingerprint groups
    query.widths = {4, 8};      // two cells per group per workload
    query.metric = "ipc";
    const std::size_t unique = query.cells().size();

    ExperimentDriver legacy(0, /*test_scale=*/true, /*jobs=*/1);
    legacy.setBatched(false);
    const MatrixResult fresh = runMatrixQuery(legacy, query);

    constexpr int kClients = 3;
    std::vector<std::string> rendered(kClients);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i]() {
            try {
                net::Client client(fx.port());
                rendered[i] = client.matrix(query).render(true);
            } catch (const std::exception &) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(failures.load(), 0);
    for (int i = 0; i < kClients; ++i)
        EXPECT_EQ(rendered[i], fresh.render(true)) << "client " << i;
    EXPECT_EQ(fx.server().driver().simulatedCells(), unique);
}

TEST(Serve, HandshakeReportsServerVersions)
{
    ServerFixture fx;
    net::Client client(fx.port());
    const net::Hello ours = net::Hello::current();
    EXPECT_TRUE(ours.compatible(client.serverVersions()));
    client.ping();
}

TEST(Serve, ConcurrentIdenticalRequestsSingleFlight)
{
    ServerFixture fx;
    const MatrixQuery query = smallQuery();
    const std::size_t unique = query.cells().size();

    constexpr int kClients = 4;
    std::vector<std::string> rendered(kClients);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i]() {
            try {
                net::Client client(fx.port());
                rendered[i] = client.matrix(query).render(true);
            } catch (const std::exception &) {
                failures.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(failures.load(), 0);
    for (int i = 1; i < kClients; ++i)
        EXPECT_EQ(rendered[i], rendered[0]) << "client " << i;

    // The ground truth for "exactly one simulation per unique cell"
    // lives below the registry: the driver counts every cell it
    // actually ran.
    EXPECT_EQ(fx.server().driver().simulatedCells(), unique);
}

TEST(Serve, OverloadShedsWithTypedError)
{
    serve::ServerOptions opts;
    opts.maxSessions = 1;
    ServerFixture fx(opts);

    // Occupy the only slot (handshake completes => session is live).
    net::Client holder(fx.port());
    holder.ping();

    // The next connection must be shed with Overloaded, not stalled.
    bool overloaded = false;
    try {
        net::Client excess(fx.port());
    } catch (const net::ServerError &e) {
        overloaded = e.code == net::ErrCode::Overloaded;
    }
    EXPECT_TRUE(overloaded);
}

TEST(Serve, DeadlineBoundsTheWaitNotTheSimulation)
{
    ServerFixture fx;
    MatrixQuery slow = smallQuery();
    slow.set = "pc";
    slow.configs = "A";

    // Hold one of the query's cells in flight for 400 ms.
    support::faultArm("cell-stall:li/A/4");

    std::thread owner([&]() {
        net::Client client(fx.port());
        const MatrixResult result = client.matrix(slow);
        EXPECT_FALSE(result.interrupted);
    });
    // Give the owner time to claim the stalled cell, then ask for the
    // same cells with a deadline far shorter than the stall.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    MatrixQuery hurried = slow;
    hurried.deadlineMs = 50;
    bool expired = false;
    try {
        net::Client client(fx.port());
        client.matrix(hurried);
    } catch (const net::ServerError &e) {
        expired = e.code == net::ErrCode::Deadline;
    }
    owner.join();
    support::faultArm("");
    EXPECT_TRUE(expired);

    // The cells kept computing: the same query with no deadline is
    // now answered from cache, instantly.
    net::Client client(fx.port());
    const MatrixResult cached = client.matrix(slow);
    EXPECT_EQ(cached.summary.simulated, 0u);
}

TEST(Serve, OwnDeadlineCancelsClaimedFlightTypedNotQuarantined)
{
    // The owner's own deadline fires its request token, the stalled
    // simulation unwinds cooperatively, and the reply is the typed
    // Cancelled — NOT Deadline (that is the waiter's word) and NOT a
    // quarantine: the cell re-runs cleanly for the next request and
    // renders byte-identical to a fresh local run.
    ServerFixture fx;
    MatrixQuery slow = smallQuery();
    slow.configs = "A";

    support::faultArm("cell-stall:li/A/4");     // 400 ms stall
    MatrixQuery hurried = slow;
    hurried.deadlineMs = 100;                   // expires mid-stall
    bool cancelled = false;
    try {
        net::Client client(fx.port());
        client.matrix(hurried);
    } catch (const net::ServerError &e) {
        cancelled = e.code == net::ErrCode::Cancelled;
        EXPECT_NE(std::string(e.what()).find("cancelled"),
                  std::string::npos);
    }
    support::faultArm("");
    EXPECT_TRUE(cancelled);

    // Nothing was quarantined by the cancellation...
    EXPECT_EQ(fx.server().healthSnapshot().quarantinedCells, 0u);

    // ...and the cell re-runs cleanly: same bytes as a fresh local
    // ddsc-matrix-style run, with the cell actually simulated (the
    // cancelled attempt's partial state was discarded, not cached).
    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    const MatrixResult fresh = runMatrixQuery(local, slow);
    net::Client client(fx.port());
    const MatrixResult rerun = client.matrix(slow);
    EXPECT_EQ(rerun.render(true), fresh.render(true));
    EXPECT_GT(rerun.summary.simulated, 0u);
}

TEST(Serve, BrownoutServesCachedWhileFreshSimulationSheds)
{
    // Saturate admission (one slot, no queue).  A request answerable
    // entirely from durable cells still gets its bytes — brownout —
    // while a request needing fresh simulation is shed with a typed
    // Overloaded carrying a positive retry-after hint.
    serve::ServerOptions opts;
    opts.admission.maxActive = 1;
    opts.admission.queueDepth = 0;
    opts.admission.brownout = true;
    ServerFixture fx(opts);

    // Warm the cache so smallQuery()'s cells are durable.
    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    const std::string oracle =
        runMatrixQuery(local, smallQuery()).render(true);
    net::Client warm(fx.port());
    EXPECT_EQ(warm.matrix(smallQuery()).render(true), oracle);

    // Occupy the only admission slot with a stalled fresh simulation.
    support::faultArm("cell-stall:li/E/4");     // 400 ms stall
    MatrixQuery occupier = smallQuery();
    occupier.configs = "E";
    std::thread holder([&]() {
        net::Client client(fx.port());
        const MatrixResult result = client.matrix(occupier);
        EXPECT_FALSE(result.interrupted);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(120));

    // Cached request: served through brownout, same bytes as ever.
    {
        net::Client client(fx.port());
        const MatrixResult served = client.matrix(smallQuery());
        EXPECT_EQ(served.render(true), oracle);
        EXPECT_EQ(served.summary.simulated, 0u);
    }
    EXPECT_GE(fx.server().admission().brownoutServed(), 1u);

    // Fresh-simulation request: shed, typed, with a retry hint.
    MatrixQuery fresh = smallQuery();
    fresh.configs = "B";
    bool shed = false;
    std::uint64_t hint = 0;
    try {
        net::Client client(fx.port());
        client.matrix(fresh);
    } catch (const net::ServerError &e) {
        shed = e.code == net::ErrCode::Overloaded;
        hint = e.retryAfterMs;
    }
    EXPECT_TRUE(shed);
    EXPECT_GT(hint, 0u);
    EXPECT_GE(fx.server().admission().shedTotal(), 1u);

    holder.join();
    support::faultArm("");
}

TEST(Serve, VersionMismatchIsATypedError)
{
    ServerFixture fx;
    net::Fd conn = net::connectLocal(fx.port());
    ASSERT_TRUE(conn.valid());

    net::Hello wrong = net::Hello::current();
    wrong.traceFormat += 1;
    std::string payload;
    wrong.encode(payload);
    ASSERT_TRUE(net::writeFrame(conn.get(), net::MsgType::Hello,
                                payload));

    net::Frame reply;
    ASSERT_EQ(net::readFrame(conn.get(), reply, 5000),
              net::ReadStatus::Ok);
    ASSERT_EQ(reply.type, net::MsgType::Error);
    net::ErrorMsg err;
    support::wire::Reader reader(reply.payload);
    ASSERT_TRUE(err.decode(reader));
    EXPECT_EQ(err.code, net::ErrCode::VersionMismatch);
}

TEST(Serve, GarbageBytesDropTheSessionNotTheServer)
{
    ServerFixture fx;
    net::Fd conn = net::connectLocal(fx.port());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(net::sendAll(conn.get(),
                             "this is not a DDSN frame at all"));
    // The server drops us...
    net::Frame reply;
    EXPECT_NE(net::readFrame(conn.get(), reply, 5000),
              net::ReadStatus::Ok);
    // ...and keeps serving everyone else.
    net::Client client(fx.port());
    client.ping();
}

TEST(Serve, TornRequestFrameDropsSessionServerSurvives)
{
    ServerFixture fx;
    net::Client client(fx.port());

    // Next writeFrame in this process is the client's request: it
    // sends half and fails, and the server sees a torn frame.
    support::faultArm("net-torn-frame:1");
    EXPECT_THROW(client.matrix(smallQuery()), net::TransportError);
    support::faultArm("");

    net::Client fresh(fx.port());
    fresh.ping();
}

TEST(Serve, TornReplyFrameSurfacesAsTransportError)
{
    ServerFixture fx;
    net::Client client(fx.port());
    // Resolve the cells once so the faulted request is answered
    // without simulating (keeps hit ordering deterministic).
    client.matrix(smallQuery());

    // Hit 1 = the client's request write; hit 2 = the server's reply
    // write, which is the one that tears.
    support::faultArm("net-torn-frame:2");
    EXPECT_THROW(client.matrix(smallQuery()), net::TransportError);
    support::faultArm("");
}

TEST(Serve, MidResponseDisconnectSurfacesAsTransportError)
{
    ServerFixture fx;
    net::Client client(fx.port());

    support::faultArm("net-disconnect:1");
    EXPECT_THROW(client.matrix(smallQuery()), net::TransportError);
    support::faultArm("");

    net::Client fresh(fx.port());
    fresh.ping();
}

TEST(Serve, BadRequestIsTypedAndSessionSurvives)
{
    ServerFixture fx;
    net::Client client(fx.port());
    MatrixQuery bogus = smallQuery();
    bogus.metric = "frobnication";
    bool bad = false;
    try {
        client.matrix(bogus);
    } catch (const net::ServerError &e) {
        bad = e.code == net::ErrCode::BadRequest;
    }
    EXPECT_TRUE(bad);
    client.ping();      // same session still usable
}

TEST(Serve, OverloadShedFrameBytesArePinned)
{
    serve::ServerOptions opts;
    opts.maxSessions = 1;
    ServerFixture fx(opts);

    // Occupy the only slot so the next connect is shed at accept.
    net::Client holder(fx.port());
    holder.ping();

    // The shed reply, byte for byte: DDSN magic, type Error (9),
    // length, CRC-32, then payload { code Overloaded (2), message,
    // retryAfterMs }.  This pins the v5 wire ABI — old clients decide
    // "back off and retry" from exactly these bytes (v4 decoders stop
    // before the trailing hint and still parse), so changing any of
    // them is a protocol revision, not a refactor.  The hint is 50 ms
    // by construction: a fresh server's admission EWMA is empty and
    // reports its deterministic default.
    static const unsigned char kShedFrame[] = {
        0x44, 0x44, 0x53, 0x4e,             // magic "DDSN"
        0x09,                               // MsgType::Error
        0x3b, 0x00, 0x00, 0x00,             // payload length 59
        0x8e, 0x67, 0xb3, 0x8d,             // CRC-32 of the payload
        0x02,                               // ErrCode::Overloaded
        0x2e, 0x00, 0x00, 0x00,             // message length 46
        's', 'e', 'r', 'v', 'e', 'r', ' ', 'a', 't', ' ',
        'c', 'a', 'p', 'a', 'c', 'i', 't', 'y', ' ', '(',
        '1', ' ', 's', 'e', 's', 's', 'i', 'o', 'n', 's',
        ')', ';', ' ', 'r', 'e', 't', 'r', 'y', ' ',
        's', 'h', 'o', 'r', 't', 'l', 'y',
        0x32, 0x00, 0x00, 0x00,             // retryAfterMs = 50 ...
        0x00, 0x00, 0x00, 0x00,             // ... (u64 LE)
    };

    net::Fd conn = net::connectLocal(fx.port());
    ASSERT_TRUE(conn.valid());
    unsigned char got[sizeof kShedFrame];
    ASSERT_EQ(net::recvExact(conn.get(), got, sizeof got, 5000),
              sizeof got);
    EXPECT_EQ(std::memcmp(got, kShedFrame, sizeof kShedFrame), 0);

    // After the shed frame the server hangs up: clean EOF, no tail.
    unsigned char extra = 0;
    EXPECT_EQ(net::recvExact(conn.get(), &extra, 1, 2000), 0u);
}

TEST(Serve, RetryRidesOutOverloadUntilASlotFrees)
{
    serve::ServerOptions opts;
    opts.maxSessions = 1;
    ServerFixture fx(opts);

    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    const std::string oracle =
        runMatrixQuery(local, smallQuery()).render(true);

    auto holder = std::make_unique<net::Client>(fx.port());
    holder->ping();
    std::thread freeSlot([&holder]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        holder.reset();     // hang up; the server reaps the slot
    });

    // Every attempt while the slot is held is shed with Overloaded
    // (retryable); once the holder hangs up, an attempt lands and the
    // answer is the ordinary byte-identical one.
    net::RetryPolicy policy;
    policy.retries = 20;
    policy.budgetMs = 30000;
    const std::uint16_t port = fx.port();
    net::Client retrying([port]() { return port; }, -1, policy);
    EXPECT_EQ(retrying.matrix(smallQuery()).render(true), oracle);
    EXPECT_GE(retrying.retriesUsed(), 1u);
    freeSlot.join();
}

TEST(Serve, TimedOutReplyPoisonsTheConnection)
{
    ServerFixture fx;

    // One cell sleeps ~400 ms, so the reply outlives a 100 ms client
    // read timeout and arrives on a socket the client abandoned.
    support::faultArm("cell-stall:li/A/4");
    net::Client client(fx.port(), /*timeout_ms=*/100);
    EXPECT_THROW(client.matrix(smallQuery()), net::TransportError);
    support::faultArm("");

    // The timeout must have poisoned the connection: the stale
    // MatrixReply lands on the old socket once the stall ends, and a
    // ping over that socket would read it as a desynchronized,
    // wrong-type frame.  Poisoned, the client reconnects instead.
    // Under sanitizer builds the server can be slow enough that the
    // 100 ms timeout keeps tripping — retrying a timeout is fine, but
    // no attempt may ever read the stale frame.
    auto neverDesynced = [](const net::TransportError &e) {
        EXPECT_EQ(std::string(e.what()).find("unexpected reply"),
                  std::string::npos)
            << e.what();
    };
    bool ponged = false;
    for (int i = 0; i < 100 && !ponged; ++i) {
        try {
            client.ping();
            ponged = true;
        } catch (const net::TransportError &e) {
            neverDesynced(e);
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    }
    EXPECT_TRUE(ponged);

    // ...and the answer it then gets is the ordinary, complete one
    // (the server finished computing; only the wait was abandoned).
    for (int i = 0; i < 100; ++i) {
        try {
            const MatrixResult result = client.matrix(smallQuery());
            EXPECT_EQ(result.summary.cells, 4u);
            EXPECT_TRUE(result.quarantined.empty());
            return;
        } catch (const net::TransportError &e) {
            neverDesynced(e);
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
    }
    FAIL() << "matrix never completed inside the 100 ms timeout";
}

TEST(Serve, DrainRefusesNewConnections)
{
    auto fx = std::make_unique<ServerFixture>();
    const std::uint16_t port = fx->port();
    net::Client client(port);
    client.ping();
    fx.reset();         // stop() + join: full drain

    EXPECT_THROW(net::Client{port}, net::TransportError);
}

} // anonymous namespace
} // namespace ddsc
