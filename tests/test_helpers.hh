/**
 * @file
 * Shared helpers for building trace records and micro-traces by hand.
 */

#ifndef DDSC_TESTS_TEST_HELPERS_HH
#define DDSC_TESTS_TEST_HELPERS_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"
#include "trace/source.hh"

namespace ddsc::test
{

/** Fluent builder for one trace record. */
class Rec
{
  public:
    explicit Rec(Opcode op) { rec_.op = op; }

    Rec &pc(std::uint64_t v) { rec_.pc = v; return *this; }
    Rec &rd(unsigned v) { rec_.rd = static_cast<std::uint8_t>(v); return *this; }
    Rec &rs1(unsigned v) { rec_.rs1 = static_cast<std::uint8_t>(v); return *this; }
    Rec &rs2(unsigned v)
    {
        rec_.rs2 = static_cast<std::uint8_t>(v);
        rec_.useImm = false;
        return *this;
    }
    Rec &imm(std::int32_t v) { rec_.imm = v; rec_.useImm = true; return *this; }
    Rec &ea(std::uint64_t v) { rec_.ea = v; return *this; }
    Rec &cond(Cond c) { rec_.cond = c; return *this; }
    Rec &taken(bool t) { rec_.taken = t; return *this; }
    Rec &target(std::uint64_t v) { rec_.target = v; return *this; }

    operator TraceRecord() const { return rec_; }

  private:
    TraceRecord rec_;
};

/** ALU convenience: op rd, rs1, rs2. */
inline TraceRecord
alu(Opcode op, unsigned rd, unsigned rs1, unsigned rs2,
    std::uint64_t pc = 0x10000)
{
    return Rec(op).pc(pc).rd(rd).rs1(rs1).rs2(rs2);
}

/** ALU with immediate: op rd, rs1, imm. */
inline TraceRecord
aluImm(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm,
       std::uint64_t pc = 0x10000)
{
    return Rec(op).pc(pc).rd(rd).rs1(rs1).imm(imm);
}

/** Load word: ld rd, [rs1 + imm] touching @p ea. */
inline TraceRecord
load(unsigned rd, unsigned rs1, std::int32_t imm, std::uint64_t ea,
     std::uint64_t pc = 0x10000)
{
    return Rec(Opcode::LDW).pc(pc).rd(rd).rs1(rs1).imm(imm).ea(ea);
}

/** Store word: st rd, [rs1 + imm] touching @p ea. */
inline TraceRecord
store(unsigned rd, unsigned rs1, std::int32_t imm, std::uint64_t ea,
      std::uint64_t pc = 0x10000)
{
    return Rec(Opcode::STW).pc(pc).rd(rd).rs1(rs1).imm(imm).ea(ea);
}

/** Conditional branch with an outcome. */
inline TraceRecord
branch(Cond cond, bool taken, std::uint64_t pc = 0x10000)
{
    return Rec(Opcode::BCC).pc(pc).cond(cond).taken(taken)
        .target(taken ? pc + 16 : pc + 4);
}

/** Wrap records into a rewindable source. */
inline VectorTraceSource
traceOf(std::vector<TraceRecord> records)
{
    return VectorTraceSource(std::move(records));
}

} // namespace ddsc::test

#endif // DDSC_TESTS_TEST_HELPERS_HH
