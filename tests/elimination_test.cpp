/**
 * @file
 * Tests for the node-elimination extension (paper Figure 1.f): a
 * producer absorbed by collapsing whose result nobody else reads
 * before it is overwritten need not execute at all.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/scheduler.hh"
#include "test_helpers.hh"
#include "trace/synthetic.hh"

namespace ddsc
{
namespace
{

using test::alu;
using test::aluImm;
using test::branch;
using test::traceOf;

SchedStats
runElim(std::vector<TraceRecord> records, unsigned width = 1,
        bool eliminate = true)
{
    MachineConfig config = MachineConfig::paper('C', width);
    config.nodeElimination = eliminate;
    VectorTraceSource trace = traceOf(std::move(records));
    LimitScheduler scheduler(config);
    return scheduler.run(trace);
}

TEST(NodeElimination, DeadCollapsedProducerIsEliminated)
{
    // P's only consumer collapsed it, and r1 is overwritten: P need
    // not execute.  At width 2 (window 4, so the overwriter is seen
    // before P issues) that saves an issue slot.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),      // P
        alu(Opcode::ADD, 4, 1, 5, 0x10004),      // collapses P
        alu(Opcode::ADD, 1, 6, 7, 0x10008),      // overwrites r1
    };
    const SchedStats off = runElim(recs, 2, false);
    const SchedStats on = runElim(recs, 2, true);
    EXPECT_EQ(off.eliminatedInstructions, 0u);
    EXPECT_EQ(on.eliminatedInstructions, 1u);
    EXPECT_EQ(off.cycles, 2u);   // {P, consumer}, then the overwriter
    EXPECT_EQ(on.cycles, 1u);    // {consumer, overwriter} together
}

TEST(NodeElimination, ValueReaderBlocksElimination)
{
    // A multiply cannot absorb the producer, so it reads the real
    // value: the producer must execute.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADD, 1, 2, 3, 0x10000),      // P
        alu(Opcode::ADD, 4, 1, 5, 0x10004),      // collapses P
        alu(Opcode::MUL, 8, 1, 9, 0x10008),      // real value reader
        alu(Opcode::ADD, 1, 6, 7, 0x1000c),      // overwrites r1
    };
    const SchedStats on = runElim(recs, 4, true);
    EXPECT_EQ(on.eliminatedInstructions, 0u);
}

TEST(NodeElimination, NeverAbsorbedProducerIsNotEliminated)
{
    // Dead code that was never collapsed still executes (elimination
    // exists only inside the collapsing mechanism).
    std::vector<TraceRecord> recs = {
        alu(Opcode::MUL, 1, 2, 3, 0x10000),      // not collapsible
        alu(Opcode::ADD, 1, 6, 7, 0x10004),      // overwrites r1
    };
    const SchedStats on = runElim(recs, 4, true);
    EXPECT_EQ(on.eliminatedInstructions, 0u);
}

TEST(NodeElimination, LiveConditionCodesBlockElimination)
{
    // The cc writer's register result is dead, but a branch may still
    // consume the cc: no elimination while the cc is live.
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADDCC, 1, 2, 3, 0x10000),    // P: sets cc
        alu(Opcode::ADD, 4, 1, 5, 0x10004),      // collapses P's value
        alu(Opcode::ADD, 1, 6, 7, 0x10008),      // overwrites r1
        branch(Cond::EQ, false, 0x1000c),        // reads P's cc
    };
    const SchedStats on = runElim(recs, 4, true);
    EXPECT_EQ(on.eliminatedInstructions, 0u);
}

TEST(NodeElimination, DeadCcWriterIsEliminatedAfterCcOverwrite)
{
    std::vector<TraceRecord> recs = {
        alu(Opcode::ADDCC, 1, 2, 3, 0x10000),    // P: sets cc
        alu(Opcode::ADD, 4, 1, 5, 0x10004),      // collapses P's value
        alu(Opcode::SUBCC, 0, 6, 7, 0x10008),    // overwrites the cc
        alu(Opcode::ADD, 1, 6, 7, 0x1000c),      // overwrites r1
        branch(Cond::EQ, false, 0x10010),        // reads the NEW cc
    };
    const SchedStats on = runElim(recs, 4, true);
    EXPECT_EQ(on.eliminatedInstructions, 1u);
}

TEST(NodeElimination, TimingNeverWorse)
{
    SyntheticTraceConfig config;
    config.instructions = 20000;
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
        config.seed = seed;
        VectorTraceSource trace = generateSynthetic(config);
        for (const unsigned width : {2u, 8u}) {
            MachineConfig off_cfg = MachineConfig::paper('D', width);
            MachineConfig on_cfg = off_cfg;
            on_cfg.nodeElimination = true;

            trace.reset();
            LimitScheduler off_sched(off_cfg);
            const SchedStats off = off_sched.run(trace);
            trace.reset();
            LimitScheduler on_sched(on_cfg);
            const SchedStats on = on_sched.run(trace);

            // Same instruction count; elimination frees issue slots,
            // so cycles may only shrink (up to greedy noise).
            EXPECT_EQ(on.instructions, off.instructions);
            EXPECT_LE(on.cycles,
                      off.cycles + off.cycles / 50) << seed << width;
        }
    }
}

TEST(NodeElimination, EnginesAgree)
{
    SyntheticTraceConfig config;
    config.instructions = 15000;
    config.seed = 77;
    VectorTraceSource trace = generateSynthetic(config);
    MachineConfig fast_cfg = MachineConfig::paper('D', 8);
    fast_cfg.nodeElimination = true;
    MachineConfig naive_cfg = fast_cfg;
    naive_cfg.naiveEngine = true;

    trace.reset();
    LimitScheduler fast(fast_cfg);
    const SchedStats a = fast.run(trace);
    trace.reset();
    LimitScheduler naive(naive_cfg);
    const SchedStats b = naive.run(trace);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.eliminatedInstructions, b.eliminatedInstructions);
}

} // anonymous namespace
} // namespace ddsc
