/**
 * @file
 * Parameterized property sweeps across component configuration spaces:
 * predictor geometries, stride patterns, collapse-rule shapes, and
 * scheduler widths.  Each property is stated once and instantiated
 * over the whole parameter grid.
 */

#include <gtest/gtest.h>

#include "addrpred/addrpred.hh"
#include "bpred/bpred.hh"
#include "collapse/rules.hh"
#include "core/scheduler.hh"
#include "trace/synthetic.hh"

namespace ddsc
{
namespace
{

// --- branch predictors across sizes ------------------------------------

class BpredGeometry : public testing::TestWithParam<unsigned>
{
};

TEST_P(BpredGeometry, AllDesignsLearnABiasedStream)
{
    const unsigned bits = GetParam();
    BimodalPredictor bimodal(bits);
    GsharePredictor gshare(bits);
    LocalPredictor local(bits > 12 ? 12 : bits, bits);
    CombiningPredictor combining(bits);
    BranchPredictor *preds[] = {&bimodal, &gshare, &local, &combining};

    for (BranchPredictor *pred : preds) {
        int hits = 0;
        for (int i = 0; i < 500; ++i)
            hits += pred->predictAndUpdate(0x10000, true) ? 1 : 0;
        // History-indexed designs pay ~2 mispredicts per distinct
        // history pattern during warm-up, so the floor is sized for
        // the longest history in the sweep.
        EXPECT_GT(hits, 460) << pred->name();
    }
}

TEST_P(BpredGeometry, ResetIsIdempotentAndComplete)
{
    const unsigned bits = GetParam();
    CombiningPredictor pred(bits);
    // Train on a mixed stream across many pcs.
    for (int i = 0; i < 400; ++i)
        pred.update(0x10000 + 4 * (i % 64), i % 3 != 0);
    pred.reset();
    // Post-reset behaviour must match a freshly built predictor.
    CombiningPredictor fresh(bits);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t pc = 0x20000 + 4 * (i % 16);
        const bool taken = i % 2 == 0;
        EXPECT_EQ(pred.predictAndUpdate(pc, taken),
                  fresh.predictAndUpdate(pc, taken)) << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BpredGeometry,
                         testing::Values(4u, 8u, 10u, 13u, 15u));

// --- address predictors across strides ---------------------------------

struct StrideCase
{
    AddrPredKind kind;
    std::int64_t stride;
};

class StrideLearning : public testing::TestWithParam<StrideCase>
{
};

TEST_P(StrideLearning, ConstantStridesAreLearned)
{
    const StrideCase param = GetParam();
    auto pred = makeAddressPredictor(param.kind);
    std::uint64_t addr = 0x40000000;
    // Train well past any warm-up.
    for (int i = 0; i < 30; ++i) {
        pred->update(0x10040, addr);
        addr = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(addr) + param.stride);
    }
    const AddrPrediction p = pred->predict(0x10040);
    ASSERT_TRUE(p.usable);
    EXPECT_EQ(p.addr, addr);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, StrideLearning,
    testing::Values(
        StrideCase{AddrPredKind::TwoDelta, 4},
        StrideCase{AddrPredKind::TwoDelta, -8},
        StrideCase{AddrPredKind::TwoDelta, 64},
        StrideCase{AddrPredKind::TwoDelta, 0},
        StrideCase{AddrPredKind::Context, 4},
        StrideCase{AddrPredKind::Context, -8},
        StrideCase{AddrPredKind::Context, 0},
        StrideCase{AddrPredKind::LastValue, 0}));

// --- collapse-rule properties over expression shapes --------------------

struct ExprCase
{
    unsigned raw;
    unsigned nonZero;
    unsigned instrs;
};

class CollapseShapes : public testing::TestWithParam<ExprCase>
{
};

TEST_P(CollapseShapes, JudgementIsMonotoneInOperands)
{
    // If a shape is illegal, any shape with more non-zero operands
    // (same instruction count) is illegal too.
    const ExprCase param = GetParam();
    CollapseRules rules;
    ExprSize expr;
    expr.rawOperands = param.raw;
    expr.nonZeroOperands = param.nonZero;
    expr.instructions = param.instrs;
    CollapseCategory category;
    const bool legal = rules.judge(expr, category);
    if (!legal) {
        ExprSize wider = expr;
        wider.rawOperands += 1;
        wider.nonZeroOperands += 1;
        CollapseCategory c2;
        EXPECT_FALSE(rules.judge(wider, c2));
    } else {
        // Legal shapes have at most 4 effective operands and at most
        // 3 instructions, and the category is consistent.
        EXPECT_LE(expr.nonZeroOperands, 4u);
        EXPECT_LE(expr.instructions, 3u);
        if (category == CollapseCategory::ZeroOp)
            EXPECT_GT(expr.rawOperands, 4u);
        if (category == CollapseCategory::ThreeOne) {
            EXPECT_EQ(expr.instructions, 2u);
            EXPECT_LE(expr.rawOperands, 3u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CollapseShapes,
    testing::ValuesIn([] {
        std::vector<ExprCase> cases;
        for (unsigned instrs = 2; instrs <= 4; ++instrs) {
            for (unsigned raw = 1; raw <= 7; ++raw) {
                for (unsigned zero = 0; zero <= raw && zero <= 3;
                     ++zero) {
                    cases.push_back({raw, raw - zero, instrs});
                }
            }
        }
        return cases;
    }()));

// --- scheduler across widths --------------------------------------------

class WidthSweep : public testing::TestWithParam<unsigned>
{
};

TEST_P(WidthSweep, StructuralInvariantsOnASyntheticTrace)
{
    const unsigned width = GetParam();
    SyntheticTraceConfig config;
    config.instructions = 8000;
    config.seed = 1234;
    VectorTraceSource trace = generateSynthetic(config);

    LimitScheduler scheduler(MachineConfig::paper('D', width));
    const SchedStats stats = scheduler.run(trace);

    // Width bounds IPC; total work bounds cycles from below.
    EXPECT_LE(stats.ipc(), static_cast<double>(width) + 1e-9);
    EXPECT_GE(stats.cycles,
              (stats.instructions + width - 1) / width);
    // Everything got simulated exactly once.
    EXPECT_EQ(stats.instructions, 8000u);
    // Load classes partition loads.
    std::uint64_t sum = 0;
    for (const auto n : stats.loadClasses)
        sum += n;
    EXPECT_EQ(sum, stats.loads);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 32u,
                                         64u, 128u, 2048u));

} // anonymous namespace
} // namespace ddsc
