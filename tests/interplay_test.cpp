/**
 * @file
 * Tests for the interaction between d-collapsing and load-speculation
 * (paper section 5.2): collapsing address generation into a load makes
 * the load "ready" where it would otherwise need a predicted address.
 * "The increase in the number of ready loads, with increasing window
 * size, is attributed to a corresponding increase of collapsed
 * instructions."
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/scheduler.hh"
#include "test_helpers.hh"

namespace ddsc
{
namespace
{

using test::alu;
using test::aluImm;
using test::load;
using test::traceOf;

SchedStats
runCfg(char id, unsigned width, std::vector<TraceRecord> records)
{
    VectorTraceSource trace = traceOf(std::move(records));
    LimitScheduler scheduler(MachineConfig::paper(id, width));
    return scheduler.run(trace);
}

/**
 * One block: the load's address register is produced by a collapsible
 * add that itself depends on a slow divide through a *non-address*
 * path... no: rs of the add are immediate-rooted, so collapsing the
 * add into the load removes the load's entire wait.
 */
std::vector<TraceRecord>
addrGenBlocks(int count)
{
    std::vector<TraceRecord> recs;
    std::uint64_t ea = 0x40000000;
    for (int i = 0; i < count; ++i) {
        // r1 = r9 + 128 : collapsible address generation, and r9 is
        // itself produced by a 1-cycle op inserted just before, so at
        // insertion the chain is never already complete.
        recs.push_back(aluImm(Opcode::ADD, 9, 10, 4, 0x10000));
        recs.push_back(aluImm(Opcode::ADD, 1, 9, 128, 0x10004));
        recs.push_back(load(3, 1, 0, ea, 0x10008));
        recs.push_back(aluImm(Opcode::ADD, 10, 3, 1, 0x1000c));
        ea += 4;
    }
    return recs;
}

TEST(Interplay, CollapsingTurnsSpeculatedLoadsIntoReadyLoads)
{
    const auto recs = addrGenBlocks(50);

    // Without collapsing (B): the address arrives late, so loads
    // consult the predictor.
    const SchedStats b = runCfg('B', 4, recs);
    const std::uint64_t b_ready =
        b.loadClasses[static_cast<unsigned>(LoadClass::Ready)];

    // With collapsing (D): the addr-gen add collapses into the load,
    // so many loads no longer wait for their address at all.
    const SchedStats d = runCfg('D', 4, recs);
    const std::uint64_t d_ready =
        d.loadClasses[static_cast<unsigned>(LoadClass::Ready)];

    EXPECT_GT(d_ready, b_ready);
    EXPECT_GT(d.collapse.events(), 0u);
}

TEST(Interplay, SpeculationStillHelpsWhenCollapsingCannot)
{
    // The address chain runs through a multiply, which collapsing
    // cannot absorb; only address prediction can hide it.
    std::vector<TraceRecord> recs;
    std::uint64_t ea = 0x40000000;
    for (int i = 0; i < 50; ++i) {
        recs.push_back(alu(Opcode::MUL, 1, 1, 2, 0x10000));
        recs.push_back(load(3, 1, 0, ea, 0x10004));
        recs.push_back(aluImm(Opcode::ADD, 4, 3, 1, 0x10008));
        ea += 4;
    }
    const SchedStats c = runCfg('C', 4, recs);
    const SchedStats d = runCfg('D', 4, recs);
    EXPECT_LT(d.cycles, c.cycles);
    EXPECT_GT(d.loadClasses[static_cast<unsigned>(
                  LoadClass::PredictedCorrect)], 30u);
}

TEST(Interplay, CollapsedAddressGenerationStillTrainsThePredictor)
{
    // Every load updates the stride table whether or not it uses it:
    // after a ready-load phase, a speculation-needing phase must find
    // the table already warm.
    std::vector<TraceRecord> recs = addrGenBlocks(30);
    // Phase 2: same load pc, addresses continuing the stride, but now
    // behind a divide: needs prediction immediately.
    std::uint64_t ea = 0x40000000 + 30 * 4;
    for (int i = 0; i < 10; ++i) {
        recs.push_back(alu(Opcode::DIV, 1, 1, 2, 0x10010));
        recs.push_back(load(3, 1, 0, ea, 0x10008));  // same pc as before
        ea += 4;
    }
    const SchedStats d = runCfg('D', 4, recs);
    // The phase-2 loads should be predicted correctly right away.
    EXPECT_GT(d.loadClasses[static_cast<unsigned>(
                  LoadClass::PredictedCorrect)], 5u);
}

TEST(Interplay, FullyCollapsedAddressGenerationMakesLoadsReady)
{
    // When the address chain is immediate-rooted and collapsible, the
    // loads are classified ready under D (the address costs nothing),
    // while under B they must speculate.
    std::vector<TraceRecord> recs;
    std::uint64_t ea = 0x40000000;
    for (int i = 0; i < 40; ++i) {
        // r1 = r20 + 128, r20 never written: pure addr-gen collapse.
        recs.push_back(aluImm(Opcode::ADD, 1, 20, 128, 0x10000));
        recs.push_back(load(3, 1, 0, ea, 0x10004));
        recs.push_back(aluImm(Opcode::ADD, 4, 3, 1, 0x10008));
        ea += 4;
    }
    const SchedStats d = runCfg('D', 4, recs);
    EXPECT_GT(d.loadClassPct(LoadClass::Ready), 90.0);
}

} // anonymous namespace
} // namespace ddsc
