/**
 * @file
 * AdmissionController in isolation: the bounded FIFO, per-connection
 * in-flight caps, queue-deadline eviction, brownout bypass, and the
 * EWMA-priced retry hints — all without a server or sockets, so every
 * decision is driven deterministically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/admission.hh"

namespace ddsc::serve
{
namespace
{

AdmissionOptions
tinyOptions()
{
    AdmissionOptions opts;
    opts.maxActive = 1;
    opts.queueDepth = 2;
    opts.perConnInflight = 4;
    opts.brownout = true;
    return opts;
}

TEST(Admission, FastPathAdmitsUpToMaxActive)
{
    AdmissionOptions opts = tinyOptions();
    opts.maxActive = 3;
    AdmissionController adm(opts);
    std::vector<AdmissionDecision> held;
    for (unsigned i = 0; i < 3; ++i) {
        held.push_back(adm.admit(/*conn=*/i, /*budget=*/0,
                                 /*cached=*/false));
        EXPECT_TRUE(held.back().admitted);
        EXPECT_FALSE(held.back().viaBrownout);
    }
    EXPECT_EQ(adm.activeCount(), 3u);
    for (unsigned i = 0; i < 3; ++i)
        adm.release(i, held[i], /*service_ms=*/0);
    EXPECT_EQ(adm.activeCount(), 0u);
}

TEST(Admission, QueueIsFifoAndBoundedThenSheds)
{
    AdmissionController adm(tinyOptions());    // 1 active, 2 queued
    const AdmissionDecision first =
        adm.admit(1, 0, /*cached=*/false);
    ASSERT_TRUE(first.admitted);

    // Two waiters fit in the queue; they must come out in order.
    std::atomic<int> order{0};
    int turn2 = -1, turn3 = -1;
    AdmissionDecision d2, d3;
    std::thread w2([&]() {
        d2 = adm.admit(2, 0, false);
        turn2 = order.fetch_add(1);
    });
    while (adm.queueLength() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::thread w3([&]() {
        d3 = adm.admit(3, 0, false);
        turn3 = order.fetch_add(1);
    });
    while (adm.queueLength() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // A third uncached request finds the queue full: shed, typed,
    // with a positive hint.
    const AdmissionDecision shed = adm.admit(4, 0, false);
    EXPECT_FALSE(shed.admitted);
    EXPECT_GT(shed.retryAfterMs, 0u);
    EXPECT_GE(adm.shedTotal(), 1u);

    adm.release(1, first, 5);
    w2.join();                      // FIFO: 2 before 3
    ASSERT_TRUE(d2.admitted);
    adm.release(2, d2, 5);
    w3.join();
    ASSERT_TRUE(d3.admitted);
    adm.release(3, d3, 5);
    EXPECT_EQ(turn2, 0);
    EXPECT_EQ(turn3, 1);
    EXPECT_EQ(adm.activeCount(), 0u);
    EXPECT_EQ(adm.queueLength(), 0u);
}

TEST(Admission, PerConnectionInflightCapShedsTheHog)
{
    AdmissionOptions opts = tinyOptions();
    opts.maxActive = 8;
    opts.perConnInflight = 2;
    AdmissionController adm(opts);
    const AdmissionDecision a = adm.admit(7, 0, false);
    const AdmissionDecision b = adm.admit(7, 0, false);
    EXPECT_TRUE(a.admitted);
    EXPECT_TRUE(b.admitted);
    const AdmissionDecision c = adm.admit(7, 0, false);
    EXPECT_FALSE(c.admitted);
    EXPECT_NE(c.reason.find("in flight"), std::string::npos);
    // A different connection is unaffected by the hog's cap.
    const AdmissionDecision other = adm.admit(8, 0, false);
    EXPECT_TRUE(other.admitted);
    adm.release(7, a, 0);
    adm.release(7, b, 0);
    adm.release(8, other, 0);
}

TEST(Admission, BudgetThatCannotSurviveTheQueueIsShedImmediately)
{
    AdmissionController adm(tinyOptions());
    const AdmissionDecision holder = adm.admit(1, 0, false);
    ASSERT_TRUE(holder.admitted);
    // Queue empty, one slot busy: estimated wait is one EWMA default
    // (50 ms).  A 10 ms budget cannot survive it — shed instantly,
    // and counted as a queue eviction, not a queue-full shed.
    const auto t0 = std::chrono::steady_clock::now();
    const AdmissionDecision hurried =
        adm.admit(2, /*budget=*/10, false);
    const auto waited =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_FALSE(hurried.admitted);
    EXPECT_GT(hurried.retryAfterMs, 0u);
    EXPECT_EQ(adm.queueEvictions(), 1u);
    EXPECT_LT(waited, 10);          // *immediately*, not after 10 ms
    // A roomy budget queues instead (and gets its turn).
    std::thread waiter([&]() {
        const AdmissionDecision roomy =
            adm.admit(3, /*budget=*/5000, false);
        EXPECT_TRUE(roomy.admitted);
        adm.release(3, roomy, 0);
    });
    while (adm.queueLength() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    adm.release(1, holder, 0);
    waiter.join();
}

TEST(Admission, BudgetExpiringWhileQueuedEvicts)
{
    AdmissionController adm(tinyOptions());
    const AdmissionDecision holder = adm.admit(1, 0, false);
    ASSERT_TRUE(holder.admitted);
    // Enough budget to be worth queueing (over the 50 ms estimate),
    // but the slot never frees: the wait times out and evicts.
    const AdmissionDecision starved =
        adm.admit(2, /*budget=*/80, false);
    EXPECT_FALSE(starved.admitted);
    EXPECT_GE(adm.queueEvictions(), 1u);
    EXPECT_EQ(adm.queueLength(), 0u);   // the dead ticket is gone
    adm.release(1, holder, 0);
}

TEST(Admission, BrownoutAdmitsCachedPastAFullQueueUncachedSheds)
{
    AdmissionOptions opts = tinyOptions();
    opts.queueDepth = 0;                // saturate instantly
    AdmissionController adm(opts);
    const AdmissionDecision holder = adm.admit(1, 0, false);
    ASSERT_TRUE(holder.admitted);

    const AdmissionDecision cached = adm.admit(2, 0, /*cached=*/true);
    EXPECT_TRUE(cached.admitted);
    EXPECT_TRUE(cached.viaBrownout);
    EXPECT_EQ(adm.brownoutServed(), 1u);
    EXPECT_EQ(adm.activeCount(), 1u);   // no slot consumed

    const AdmissionDecision fresh = adm.admit(3, 0, /*cached=*/false);
    EXPECT_FALSE(fresh.admitted);
    EXPECT_GT(fresh.retryAfterMs, 0u);

    adm.release(2, cached, 1);
    adm.release(1, holder, 1);
    EXPECT_EQ(adm.activeCount(), 0u);
}

TEST(Admission, NoBrownoutShedsCachedToo)
{
    AdmissionOptions opts = tinyOptions();
    opts.queueDepth = 0;
    opts.brownout = false;
    AdmissionController adm(opts);
    const AdmissionDecision holder = adm.admit(1, 0, false);
    ASSERT_TRUE(holder.admitted);
    const AdmissionDecision cached = adm.admit(2, 0, /*cached=*/true);
    EXPECT_FALSE(cached.admitted);
    adm.release(1, holder, 0);
}

TEST(Admission, RetryHintTracksObservedLatencyAndClamps)
{
    AdmissionController adm(tinyOptions());
    // Deterministic default before any observation.
    EXPECT_EQ(adm.retryHintMs(), 50u);
    // Feed consistent 200 ms requests; the hint follows the EWMA.
    for (unsigned i = 0; i < 20; ++i) {
        const AdmissionDecision d = adm.admit(1, 0, false);
        ASSERT_TRUE(d.admitted);
        adm.release(1, d, /*service_ms=*/200);
    }
    EXPECT_GT(adm.retryHintMs(), 100u);
    EXPECT_LE(adm.retryHintMs(), 5000u);
    // An absurd observation clamps instead of telling clients to go
    // away for minutes.
    for (unsigned i = 0; i < 20; ++i) {
        const AdmissionDecision d = adm.admit(1, 0, false);
        ASSERT_TRUE(d.admitted);
        adm.release(1, d, /*service_ms=*/600000);
    }
    EXPECT_EQ(adm.retryHintMs(), 5000u);
    // And a floor: near-zero latency never prices a 0 ms busy-loop.
    AdmissionController fast(tinyOptions());
    const AdmissionDecision d = fast.admit(1, 0, false);
    fast.release(1, d, /*service_ms=*/1);
    EXPECT_GE(fast.retryHintMs(), 10u);
}

} // anonymous namespace
} // namespace ddsc::serve
