/**
 * @file
 * Cooperative cancellation, from the token itself up through the
 * experiment driver.
 *
 * Token layer: null-token semantics (never cancels, costs nothing at
 * call sites), explicit cancel with first-reason-wins, deadline
 * self-cancel, and the parent/child chain that fans one request
 * cancel out to every per-cell flight.
 *
 * Driver layer: a cancelled cell unwinds as the *typed* CellCancelled
 * — never CellQuarantined — leaves no partial state behind, spares
 * its batched siblings, and re-runs cleanly to bit-identical stats on
 * the next uncancelled ask.  An in-flight cancellation interrupts the
 * simulation at poll granularity, bounded well below the cell's
 * remaining run time.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/sched_stats.hh"
#include "sim/experiment.hh"
#include "sim/matrix_query.hh"
#include "support/cancel.hh"
#include "support/fault.hh"

namespace ddsc
{
namespace
{

using support::CancelToken;
using support::CancelledError;

/** Encoded stats with the wall-clock field masked: wallNanos is the
 *  one legitimately run-dependent field, everything else must be
 *  bit-identical across engines and re-runs. */
std::string
encoded(const SchedStats &stats)
{
    SchedStats masked = stats;
    masked.wallNanos = 0;
    std::string out;
    encodeSchedStats(out, masked);
    return out;
}

TEST(CancelToken, NullTokenNeverCancelsAndCostsNothing)
{
    const CancelToken null;
    EXPECT_FALSE(null.valid());
    EXPECT_FALSE(null.cancelled());
    EXPECT_EQ(null.remainingMs(), UINT64_MAX);
    EXPECT_NO_THROW(null.throwIfCancelled());
    // cancel() on a null token is a no-op, not a crash.
    EXPECT_NO_THROW(null.cancel("ignored"));
    EXPECT_FALSE(null.cancelled());
    EXPECT_EQ(null.reason(), "");
}

TEST(CancelToken, ExplicitCancelFirstReasonWins)
{
    const CancelToken token = CancelToken::make();
    EXPECT_TRUE(token.valid());
    EXPECT_FALSE(token.cancelled());
    token.cancel("first");
    token.cancel("second");
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), "first");
    try {
        token.throwIfCancelled();
        FAIL() << "throwIfCancelled did not throw";
    } catch (const CancelledError &e) {
        EXPECT_EQ(std::string(e.what()), "first");
    }
}

TEST(CancelToken, DeadlineSelfCancels)
{
    const CancelToken token = CancelToken::withDeadline(30);
    EXPECT_FALSE(token.cancelled());
    EXPECT_LE(token.remainingMs(), 30u);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.remainingMs(), 0u);
    EXPECT_EQ(token.reason(), "deadline exceeded");
}

TEST(CancelToken, ZeroDeadlineMeansNoDeadline)
{
    const CancelToken token = CancelToken::withDeadline(0);
    EXPECT_TRUE(token.valid());
    EXPECT_EQ(token.remainingMs(), UINT64_MAX);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, ParentCancelFansOutToChildren)
{
    const CancelToken parent = CancelToken::make();
    const CancelToken a = parent.child();
    const CancelToken b = parent.child();
    parent.cancel("request abandoned");
    EXPECT_TRUE(a.cancelled());
    EXPECT_TRUE(b.cancelled());
    EXPECT_EQ(a.reason(), "request abandoned");
}

TEST(CancelToken, ChildCancelDoesNotTouchParentOrSibling)
{
    const CancelToken parent = CancelToken::make();
    const CancelToken a = parent.child();
    const CancelToken b = parent.child();
    a.cancel("only a");
    EXPECT_TRUE(a.cancelled());
    EXPECT_FALSE(parent.cancelled());
    EXPECT_FALSE(b.cancelled());
}

TEST(CancelToken, ChildOfNullIsAFreshLiveToken)
{
    const CancelToken orphan = CancelToken().child();
    EXPECT_TRUE(orphan.valid());
    EXPECT_FALSE(orphan.cancelled());
    orphan.cancel("own life");
    EXPECT_TRUE(orphan.cancelled());
}

TEST(CancelToken, ChildDeadlineBindsTighterOfTheTwo)
{
    const CancelToken parent = CancelToken::withDeadline(10000);
    const CancelToken child = parent.childWithDeadline(30);
    EXPECT_LE(child.remainingMs(), 30u);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_TRUE(child.cancelled());
    EXPECT_FALSE(parent.cancelled());
}

/** One small driver at test scale, like experiment_test uses. */
class CancelDriverTest : public ::testing::Test
{
  protected:
    CancelDriverTest() : driver_(0, /*test_scale=*/true, /*jobs=*/2)
    {
        spec_ = findWorkloadOrNull("li");
        EXPECT_NE(spec_, nullptr);
    }

    ~CancelDriverTest() override { support::faultArm(""); }

    ExperimentDriver driver_;
    const WorkloadSpec *spec_ = nullptr;
};

TEST_F(CancelDriverTest, PreCancelledTokenIsTypedAndLeavesNoState)
{
    CancelToken token = CancelToken::make();
    token.cancel("caller gave up");
    try {
        driver_.stats(*spec_, 'A', 4, token);
        FAIL() << "cancelled stats() returned";
    } catch (const CellCancelled &e) {
        EXPECT_EQ(e.key, "li/A/4");
        EXPECT_NE(std::string(e.what()).find("caller gave up"),
                  std::string::npos);
    }
    // Not quarantined, not resolved: the cell simply never ran.
    EXPECT_EQ(driver_.quarantineCount(), 0u);
    EXPECT_FALSE(driver_.cellResolved(*spec_, 'A', 4));
    EXPECT_EQ(driver_.simulatedCells(), 0u);

    // The next uncancelled ask runs cleanly and matches a fresh
    // driver bit for bit.
    ExperimentDriver fresh(0, /*test_scale=*/true, /*jobs=*/1);
    EXPECT_EQ(encoded(driver_.stats(*spec_, 'A', 4)),
              encoded(fresh.stats(*spec_, 'A', 4)));
}

TEST_F(CancelDriverTest, MidFlightCancelInterruptsPromptly)
{
    // Pin the cell in a 400 ms injected stall, cancel from outside at
    // 50 ms: the sliced stall poll must unwind the cell long before
    // the stall would have ended on its own.
    support::faultArm("cell-stall:li/A/4");
    CancelToken token = CancelToken::make();
    bool cancelled = false;
    const auto t0 = std::chrono::steady_clock::now();
    std::thread runner([&]() {
        try {
            driver_.stats(*spec_, 'A', 4, token);
        } catch (const CellCancelled &) {
            cancelled = true;
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    token.cancel("impatient test");
    runner.join();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_TRUE(cancelled);
    EXPECT_LT(elapsed, 350) << "cancel did not interrupt the stall";
    EXPECT_EQ(driver_.quarantineCount(), 0u);
}

TEST_F(CancelDriverTest, BatchedSiblingSurvivesACancelledCell)
{
    // Two cells of one batched front-end group (same workload, same
    // config, different widths); one arrives already cancelled.  The
    // sibling must resolve normally in the same pass, and only the
    // cancelled cell is left unresolved.
    ASSERT_TRUE(driver_.batched());
    CancelToken doomed = CancelToken::make();
    doomed.cancel("deadline gone");
    const std::vector<ExperimentCell> cells = {
        {spec_, 'D', 4},
        {spec_, 'D', 8},
    };
    driver_.prefetch(cells, {doomed, CancelToken()});

    EXPECT_FALSE(driver_.cellResolved(*spec_, 'D', 4));
    EXPECT_TRUE(driver_.cellResolved(*spec_, 'D', 8));
    EXPECT_EQ(driver_.quarantineCount(), 0u);

    // The cancelled cell re-runs cleanly — and bit-identical to an
    // untouched driver's answer, proving no partial state leaked.
    ExperimentDriver fresh(0, /*test_scale=*/true, /*jobs=*/1);
    fresh.setBatched(false);    // cross-engine oracle
    EXPECT_EQ(encoded(driver_.stats(*spec_, 'D', 4)),
              encoded(fresh.stats(*spec_, 'D', 4)));
}

TEST_F(CancelDriverTest, CellDurableFlipsOnceResolved)
{
    EXPECT_FALSE(driver_.cellDurable(*spec_, 'A', 4));
    driver_.stats(*spec_, 'A', 4);
    EXPECT_TRUE(driver_.cellDurable(*spec_, 'A', 4));
}

} // anonymous namespace
} // namespace ddsc
