/**
 * @file
 * Property-style coverage of ddsc::support::ThreadPool and
 * parallelFor: results independent of task ordering, exception
 * propagation, zero-task shutdown, oversubscription (far more tasks
 * than threads), reuse after a drain, and the DDSC_JOBS policy.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_pool.hh"

namespace ddsc::support
{
namespace
{

/** RAII save/restore of one environment variable. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (had_)
            ::setenv(name_.c_str(), saved_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string saved_;
    bool had_;
};

TEST(ThreadPool, ZeroTaskShutdown)
{
    // Construction and immediate destruction with nothing queued must
    // not hang or crash, for any thread count.
    for (const unsigned n : {1u, 2u, 8u}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.size(), n);
    }
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(4);
    pool.wait();
    pool.wait();    // idempotent
}

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The worker survives the throwing task.
    EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, OversubscriptionRunsEveryTask)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 500; ++i)
        pool.post([&count]() { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ReuseAfterDrain)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.post([&count]() { count.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, DestructorRunsPendingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i) {
            pool.post([&count]() {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                count.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(count.load(), 32);
}

TEST(ParallelFor, ResultsIndependentOfOrdering)
{
    // Each index writes a pure function of itself; jittered sleeps
    // shuffle completion order, the result must not care.
    const std::size_t n = 200;
    std::vector<std::uint64_t> expected(n);
    for (std::size_t i = 0; i < n; ++i)
        expected[i] = i * i + 17;

    for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
        std::vector<std::uint64_t> got(n, 0);
        parallelFor(n, jobs, [&got](std::size_t i) {
            if (i % 7 == 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(20 * (i % 5)));
            }
            got[i] = i * i + 17;
        });
        EXPECT_EQ(got, expected) << "jobs=" << jobs;
    }
}

TEST(ParallelFor, ZeroAndSingleIndex)
{
    int calls = 0;
    parallelFor(0, 4, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, 4, [&calls](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, MoreJobsThanIndices)
{
    std::atomic<int> count{0};
    parallelFor(3, 16, [&count](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, RethrowsLowestIndexException)
{
    // Two indices throw; all other work still runs, and the rethrown
    // exception is deterministically the lowest index's.
    std::atomic<int> completed{0};
    try {
        parallelFor(64, 4, [&completed](std::size_t i) {
            if (i == 9)
                throw std::runtime_error("index 9");
            if (i == 41)
                throw std::runtime_error("index 41");
            completed.fetch_add(1);
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "index 9");
    }
    EXPECT_EQ(completed.load(), 62);
}

TEST(ParallelFor, ConcurrentThrowsSurfaceLowestIndex)
{
    // The exception-ordering contract (thread_pool.hh): when several
    // indices throw, the lowest index's exception is rethrown no
    // matter which worker threw first.  A spin barrier makes the two
    // throwers release as close to simultaneously as the scheduler
    // allows, and the loop gives a wrong implementation (e.g. "first
    // throw wins") many chances to surface index 5's exception.
    for (int round = 0; round < 25; ++round) {
        std::atomic<int> at_barrier{0};
        std::atomic<int> completed{0};
        try {
            parallelFor(8, 2, [&](std::size_t i) {
                if (i == 3 || i == 5) {
                    at_barrier.fetch_add(1);
                    while (at_barrier.load() < 2) {
                        // spin: both throwers release together
                    }
                    throw std::runtime_error("index " +
                                             std::to_string(i));
                }
                completed.fetch_add(1);
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "index 3") << "round " << round;
        }
        // The contract also promises a full drain before the rethrow.
        EXPECT_EQ(completed.load(), 6) << "round " << round;
    }
}

TEST(ParallelFor, SerialPathPropagatesException)
{
    EXPECT_THROW(
        parallelFor(4, 1, [](std::size_t i) {
            if (i == 2)
                throw std::logic_error("serial");
        }),
        std::logic_error);
}

TEST(Jobs, HardwareJobsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

TEST(Jobs, DefaultJobsHonoursEnv)
{
    ScopedEnv env("DDSC_JOBS", "3");
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
}

TEST(Jobs, DefaultJobsRejectsGarbage)
{
    {
        ScopedEnv env("DDSC_JOBS", "zippy");
        EXPECT_EQ(ThreadPool::defaultJobs(), ThreadPool::hardwareJobs());
    }
    {
        ScopedEnv env("DDSC_JOBS", "0");
        EXPECT_EQ(ThreadPool::defaultJobs(), ThreadPool::hardwareJobs());
    }
    {
        ScopedEnv env("DDSC_JOBS", "4x");
        EXPECT_EQ(ThreadPool::defaultJobs(), ThreadPool::hardwareJobs());
    }
    {
        ScopedEnv env("DDSC_JOBS", nullptr);
        EXPECT_EQ(ThreadPool::defaultJobs(), ThreadPool::hardwareJobs());
    }
}

TEST(Jobs, PoolUsesDefaultWhenZero)
{
    ScopedEnv env("DDSC_JOBS", "2");
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 2u);
}

} // anonymous namespace
} // namespace ddsc::support
