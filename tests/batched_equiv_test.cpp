/**
 * @file
 * Differential equivalence of the one-pass batched simulation path
 * against the historical one-cell-at-a-time path.
 *
 * The batched path changes two things at once — the front-end runs
 * once per (workload, front-end fingerprint) group instead of once
 * per cell, and the back-end promotes entries with exact wakeup lists
 * instead of the event engine's monotone lower bounds — so the oracle
 * here is deliberately blunt: for every workload x configuration x
 * width cell, the full SchedStats digest (digestSchedStats, every
 * deterministic field including both histograms) must be bit-identical
 * between the two paths.  VP-only and collapse-only configurations,
 * chunk-size invariance, the predictor-train-once property, and the
 * driver-level batched prefetch are pinned alongside.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/scheduler.hh"
#include "core/sched_stats.hh"
#include "sim/batched.hh"
#include "sim/experiment.hh"
#include "trace/mapped.hh"
#include "support/fault.hh"
#include "trace/synthetic.hh"
#include "workloads/workloads.hh"

namespace ddsc
{
namespace
{

SchedStats
legacyCell(const VectorTraceSource &trace, const MachineConfig &config)
{
    VectorTraceView view(trace);
    LimitScheduler sched(config);
    return sched.run(view);
}

/**
 * Run every (config, label) cell both ways — legacy per-cell, and
 * batched with the cells grouped by front-end fingerprint exactly as
 * the driver groups them — and require bit-identical digests.
 */
void
expectBatchedMatchesLegacy(const VectorTraceSource &trace,
                           const std::vector<MachineConfig> &configs,
                           const std::vector<std::string> &labels,
                           const std::string &what,
                           std::size_t chunk = kBatchedChunk)
{
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < configs.size(); ++i)
        groups[configs[i].frontEndFingerprint()].push_back(i);

    for (const auto &[fp, members] : groups) {
        std::vector<MachineConfig> group_configs;
        std::vector<std::string> group_keys;
        for (const std::size_t i : members) {
            group_configs.push_back(configs[i]);
            group_keys.push_back(labels[i]);
        }
        const BatchedGroupResult out =
            runBatchedGroup(trace, group_configs, group_keys, chunk);
        ASSERT_EQ(out.cells.size(), members.size()) << what;
        for (std::size_t k = 0; k < members.size(); ++k) {
            ASSERT_TRUE(out.cells[k].ok)
                << what << " " << group_keys[k] << ": "
                << out.cells[k].error;
            const SchedStats legacy =
                legacyCell(trace, group_configs[k]);
            EXPECT_EQ(digestSchedStats(out.cells[k].stats),
                      digestSchedStats(legacy))
                << what << " " << group_keys[k];
        }
    }
}

std::vector<MachineConfig>
paperConfigs(const std::vector<unsigned> &widths,
             std::vector<std::string> &labels)
{
    std::vector<MachineConfig> configs;
    for (const char c : std::string("ABCDE"))
        for (const unsigned w : widths) {
            configs.push_back(MachineConfig::paper(c, w));
            labels.push_back(std::string(1, c) + "/" +
                             std::to_string(w));
        }
    return configs;
}

TEST(BatchedEquiv, AllWorkloadsFullMatrix)
{
    // The tentpole oracle: every workload, every paper configuration
    // A-E, the verification widths — batched digests must equal the
    // legacy path's exactly.
    for (const WorkloadSpec &spec : allWorkloads()) {
        const VectorTraceSource trace =
            traceWorkload(spec, spec.testScale);
        std::vector<std::string> labels;
        const std::vector<MachineConfig> configs =
            paperConfigs({4, 16}, labels);
        expectBatchedMatchesLegacy(trace, configs, labels, spec.name);
    }
}

TEST(BatchedEquiv, MappedSourceMatchesVectorSource)
{
    // Feeding the batched front-end from an mmap'd v4 file instead of
    // the in-memory vector must not change a single stats bit, for
    // every paper configuration.  (This is the equivalence --trace-dir
    // and the bounded-RSS corpus sweep stand on.)
    const WorkloadSpec &spec = findWorkload("espresso");
    const VectorTraceSource trace = traceWorkload(spec, spec.testScale);

    const std::string path =
        testing::TempDir() + "/batched_equiv_mapped.trc";
    {
        TraceFileWriter writer(path, 4, 4096);  // many small blocks
        const std::unique_ptr<TraceSource> cursor = trace.cursor();
        TraceRecord rec;
        while (cursor->next(rec))
            writer.emit(rec);
    }
    MappedTraceSource mapped(path);
    ASSERT_EQ(mapped.digest(), trace.digest());

    std::vector<std::string> labels;
    const std::vector<MachineConfig> configs =
        paperConfigs({4, 16}, labels);
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < configs.size(); ++i)
        groups[configs[i].frontEndFingerprint()].push_back(i);

    for (const auto &[fp, members] : groups) {
        std::vector<MachineConfig> group_configs;
        std::vector<std::string> group_keys;
        for (const std::size_t i : members) {
            group_configs.push_back(configs[i]);
            group_keys.push_back(labels[i]);
        }
        const BatchedGroupResult from_vector =
            runBatchedGroup(trace, group_configs, group_keys);
        const BatchedGroupResult from_mapped =
            runBatchedGroup(mapped, group_configs, group_keys);
        for (std::size_t k = 0; k < members.size(); ++k) {
            ASSERT_TRUE(from_vector.cells[k].ok);
            ASSERT_TRUE(from_mapped.cells[k].ok);
            EXPECT_EQ(digestSchedStats(from_mapped.cells[k].stats),
                      digestSchedStats(from_vector.cells[k].stats))
                << group_keys[k];
        }
    }
    std::remove(path.c_str());
}

TEST(BatchedEquiv, WideWindow)
{
    // The 2048-wide cells are where the wakeup-list engine diverges
    // hardest from the event engine's bound bookkeeping (deep chains,
    // giant windows); one workload at full matrix width pins them.
    const WorkloadSpec &spec = findWorkload("li");
    const VectorTraceSource trace = traceWorkload(spec, spec.testScale);
    std::vector<std::string> labels;
    const std::vector<MachineConfig> configs =
        paperConfigs({2048}, labels);
    expectBatchedMatchesLegacy(trace, configs, labels, "li wide");
}

TEST(BatchedEquiv, SyntheticStressShapes)
{
    // Pointer-heavy, mispredict-heavy, and long-latency-chain traces
    // (the shapes engine_diff_test uses against the naive engine).
    struct Shape
    {
        const char *name;
        SyntheticTraceConfig config;
    };
    std::vector<Shape> shapes(3);
    shapes[0].name = "pointer-heavy";
    shapes[0].config.instructions = 15000;
    shapes[0].config.seed = 99;
    shapes[0].config.strideFraction = 0.0;
    shapes[0].config.loadFraction = 0.4;
    shapes[1].name = "mispredict-heavy";
    shapes[1].config.instructions = 15000;
    shapes[1].config.seed = 100;
    shapes[1].config.takenBias = 0.5;
    shapes[1].config.branchFraction = 0.3;
    shapes[2].name = "divide-chains";
    shapes[2].config.instructions = 5000;
    shapes[2].config.seed = 101;
    shapes[2].config.divFraction = 0.2;
    shapes[2].config.mulFraction = 0.2;

    for (const Shape &shape : shapes) {
        const VectorTraceSource trace =
            generateSynthetic(shape.config);
        std::vector<std::string> labels;
        const std::vector<MachineConfig> configs =
            paperConfigs({4, 16, 64}, labels);
        expectBatchedMatchesLegacy(trace, configs, labels, shape.name);
    }
}

TEST(BatchedEquiv, ValuePredictionOnlyConfig)
{
    // Value prediction without address-based load speculation: the
    // front-end must train the value predictor (and only it) and the
    // batched classification wakeups must fire at the same cycles.
    SyntheticTraceConfig trace_config;
    trace_config.instructions = 15000;
    trace_config.seed = 102;
    trace_config.loadFraction = 0.35;
    const VectorTraceSource trace = generateSynthetic(trace_config);

    std::vector<MachineConfig> configs;
    std::vector<std::string> labels;
    for (const unsigned w : {4u, 16u}) {
        MachineConfig config = MachineConfig::paper('A', w);
        config.loadValuePrediction = true;
        ASSERT_EQ(config.loadSpec, LoadSpecMode::None);
        configs.push_back(config);
        labels.push_back("vp-only/" + std::to_string(w));
    }
    expectBatchedMatchesLegacy(trace, configs, labels, "vp-only");

    // ...and the speculation must actually have fired.
    const SchedStats probe = legacyCell(trace, configs[0]);
    EXPECT_GT(probe.valuePredHits + probe.valuePredWrong, 0u);
}

TEST(BatchedEquiv, CollapseOnlyAndElimination)
{
    // Collapse-only (no load speculation) plus the node-elimination
    // extension: the same-cycle promotion closure for collapsed arcs
    // and the elimination wakeup bookkeeping are the delicate parts
    // of the wakeup engine.
    SyntheticTraceConfig trace_config;
    trace_config.instructions = 15000;
    trace_config.seed = 103;
    const VectorTraceSource trace = generateSynthetic(trace_config);

    std::vector<MachineConfig> configs;
    std::vector<std::string> labels;
    for (const unsigned w : {4u, 16u}) {
        configs.push_back(MachineConfig::paper('C', w));
        labels.push_back("C/" + std::to_string(w));
        MachineConfig elim = MachineConfig::paper('C', w);
        elim.nodeElimination = true;
        configs.push_back(elim);
        labels.push_back("C+elim/" + std::to_string(w));
    }
    expectBatchedMatchesLegacy(trace, configs, labels, "collapse-only");
}

TEST(BatchedEquiv, ChunkSizeInvariance)
{
    // The feed protocol ("kept full" across chunk boundaries) must
    // make the chunk size unobservable, including a degenerate chunk
    // smaller than the window.
    const WorkloadSpec &spec = findWorkload("espresso");
    const VectorTraceSource trace = traceWorkload(spec, spec.testScale);
    std::vector<std::string> labels;
    const std::vector<MachineConfig> configs =
        paperConfigs({4, 16}, labels);
    for (const std::size_t chunk : {std::size_t{7}, std::size_t{1000},
                                    kBatchedChunk})
        expectBatchedMatchesLegacy(trace, configs, labels,
                                   "chunk=" + std::to_string(chunk),
                                   chunk);
}

TEST(BatchedEquiv, PredictorsTrainOncePerRecord)
{
    // The point of sharing the front-end: predictor training activity
    // depends only on the trace, never on how many back-ends consume
    // the pass.  N = 1, 2, 5 back-ends must leave identical train
    // counters, equal to a bare front-end pass over the same trace.
    const WorkloadSpec &spec = findWorkload("li");
    const VectorTraceSource trace = traceWorkload(spec, spec.testScale);
    const MachineConfig base = MachineConfig::paper('D', 8);

    SpecFrontEnd bare(base);
    FrontEndBatch batch;
    VectorTraceView view(trace);
    while (bare.fill(view, batch, kBatchedChunk) != 0) {
    }
    const FrontEndTrainCounts expected = bare.trainCounts();
    EXPECT_EQ(bare.recordsAnnotated(), trace.size());
    EXPECT_GT(expected.branch, 0u);
    EXPECT_GT(expected.address, 0u);    // D trains the address tables

    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{5}}) {
        std::vector<MachineConfig> configs;
        std::vector<std::string> keys;
        for (std::size_t i = 0; i < n; ++i) {
            configs.push_back(
                MachineConfig::paper('D', 4u << (i % 3)));
            keys.push_back("train/" + std::to_string(i));
        }
        const BatchedGroupResult out =
            runBatchedGroup(trace, configs, keys);
        EXPECT_EQ(out.trainCounts.branch, expected.branch) << n;
        EXPECT_EQ(out.trainCounts.address, expected.address) << n;
        EXPECT_EQ(out.trainCounts.value, expected.value) << n;
        EXPECT_EQ(out.trainCounts.cti, expected.cti) << n;
    }
}

TEST(BatchedEquiv, DriverBatchedMatchesLegacyDriver)
{
    // The driver-level oracle: a batched prefetch of the full paper
    // matrix publishes cell-for-cell the same results as the legacy
    // cell-at-a-time driver.
    ExperimentDriver batched(0, /*test_scale=*/true, /*jobs=*/2);
    ExperimentDriver legacy(0, /*test_scale=*/true, /*jobs=*/2);
    ASSERT_TRUE(batched.batched());
    legacy.setBatched(false);

    const WorkloadSpec &li = findWorkload("li");
    const WorkloadSpec &go = findWorkload("go");
    const std::vector<const WorkloadSpec *> set = {&li, &go};
    const std::vector<unsigned> widths = {4, 16};
    batched.prefetch(ExperimentDriver::cellsFor(set, "ABCDE", widths));
    legacy.prefetch(ExperimentDriver::cellsFor(set, "ABCDE", widths));

    for (const WorkloadSpec *spec : set)
        for (const char c : std::string("ABCDE"))
            for (const unsigned w : widths)
                EXPECT_EQ(
                    digestSchedStats(batched.stats(*spec, c, w)),
                    digestSchedStats(legacy.stats(*spec, c, w)))
                    << spec->name << "/" << c << "/" << w;
    // Grouping must not inflate the simulated-cell accounting.
    EXPECT_EQ(batched.simulatedCells(), legacy.simulatedCells());
}

#ifndef DDSC_NO_FAULT_INJECTION

TEST(BatchedEquiv, MidBatchThrowDoesNotPoisonSiblings)
{
    // Three widths of config A share one front-end pass.  An injected
    // cell-throw lands on one cell's feed part-way through the stream
    // (nth-hit spec: hits rotate cell 4, 8, 16, so the 7th lands on
    // the 4-wide cell's third chunk).  The failed cell must report
    // its error; its siblings must keep consuming the very same
    // batches and finish bit-identical to the legacy path.
    const WorkloadSpec &spec = findWorkload("espresso");
    const VectorTraceSource trace = traceWorkload(spec, spec.testScale);
    const std::vector<MachineConfig> configs = {
        MachineConfig::paper('A', 4), MachineConfig::paper('A', 8),
        MachineConfig::paper('A', 16)};
    const std::vector<std::string> keys = {"A/4", "A/8", "A/16"};

    support::faultArm("cell-throw:7");
    const BatchedGroupResult out =
        runBatchedGroup(trace, configs, keys, /*chunk=*/512);
    support::faultArm("");

    ASSERT_EQ(out.cells.size(), 3u);
    EXPECT_FALSE(out.cells[0].ok);
    EXPECT_NE(out.cells[0].error.find("injected fault"),
              std::string::npos);
    for (const std::size_t k : {std::size_t{1}, std::size_t{2}}) {
        ASSERT_TRUE(out.cells[k].ok) << out.cells[k].error;
        EXPECT_EQ(digestSchedStats(out.cells[k].stats),
                  digestSchedStats(legacyCell(trace, configs[k])))
            << keys[k];
    }
}

#endif // DDSC_NO_FAULT_INJECTION

} // anonymous namespace
} // namespace ddsc
