/**
 * @file
 * Tests for the experiment driver and, through it, the paper's
 * qualitative invariants on real (small-scale) workload traces:
 * configuration ordering, load-class partitioning, collapse-distance
 * bounds, and aggregation arithmetic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <thread>

#include "sim/experiment.hh"
#include "sim/result_store.hh"
#include "support/fault.hh"
#include "support/version.hh"

namespace ddsc
{
namespace
{

/** Shared driver over test-scale workload traces to keep tests quick.
 *  (Truncating the full-scale traces instead would capture only the
 *  loadless data-initialization phase of some workloads.) */
ExperimentDriver &
driver()
{
    static ExperimentDriver instance(0, /*test_scale=*/true);
    return instance;
}

TEST(Experiment, TraceLimitIsApplied)
{
    ExperimentDriver limited(1000);
    EXPECT_EQ(limited.trace(findWorkload("espresso")).recordCount(),
              1000u);
}

TEST(Experiment, StatsAreCached)
{
    ExperimentDriver d(5000);
    const SchedStats &first = d.stats(findWorkload("ijpeg"), 'A', 4);
    const SchedStats &second = d.stats(findWorkload("ijpeg"), 'A', 4);
    EXPECT_EQ(&first, &second);
}

TEST(Experiment, EverythingHasSixEntries)
{
    EXPECT_EQ(ExperimentDriver::everything().size(), 6u);
}

// --- statsFor cache-key semantics ------------------------------------

TEST(Experiment, FingerprintSeparatesMachinesNotNames)
{
    MachineConfig a4 = MachineConfig::paper('A', 4);
    MachineConfig b4 = MachineConfig::paper('B', 4);
    MachineConfig d16 = MachineConfig::paper('D', 16);
    EXPECT_NE(a4.fingerprint(), b4.fingerprint());
    EXPECT_NE(b4.fingerprint(), d16.fingerprint());

    // The display name is cosmetic: renaming must not change identity.
    MachineConfig renamed = a4;
    renamed.name = "base-machine";
    EXPECT_EQ(a4.fingerprint(), renamed.fingerprint());

    // Every behavioural knob must feed the fingerprint.
    MachineConfig tweaked = a4;
    tweaked.rules.zeroOpDetection = false;
    EXPECT_NE(a4.fingerprint(), tweaked.fingerprint());
    tweaked = a4;
    tweaked.addrConfidenceThreshold += 1;
    EXPECT_NE(a4.fingerprint(), tweaked.fingerprint());
}

TEST(Experiment, FingerprintFieldCountMatchesVersionedSchema)
{
    // --version and the wire handshake advertise kFingerprintSchema;
    // the store trusts it to mean "same layout".  Adding or removing a
    // MachineConfig knob without bumping the schema would let a new
    // binary silently accept a stale store, so the field count is
    // pinned here (every field appends exactly one '|').
    const std::string fp = MachineConfig::paper('A', 4).fingerprint();
    EXPECT_EQ(static_cast<unsigned>(std::count(fp.begin(), fp.end(),
                                               '|')),
              support::version::kFingerprintFields);
}

TEST(Experiment, StatsForSameKeySameConfigIsACacheHit)
{
    ExperimentDriver d(4000, /*test_scale=*/true);
    const WorkloadSpec &spec = findWorkload("espresso");
    const MachineConfig config = MachineConfig::paper('C', 8);
    const SchedStats &first = d.statsFor(spec, config, "ablation-x");
    const SchedStats &second = d.statsFor(spec, config, "ablation-x");
    EXPECT_EQ(&first, &second);
}

#ifdef NDEBUG
TEST(Experiment, StatsForKeyCollisionIsDisambiguated)
{
    // Two different machines under one key: release builds warn and
    // fall back to fingerprint-disambiguated keys, so each caller
    // still gets the stats of the machine it actually passed.
    ExperimentDriver d(0, /*test_scale=*/true);
    const WorkloadSpec &spec = findWorkload("espresso");
    const SchedStats &as_a =
        d.statsFor(spec, MachineConfig::paper('A', 4), "same-key");
    const SchedStats &as_d =
        d.statsFor(spec, MachineConfig::paper('D', 16), "same-key");
    EXPECT_NE(&as_a, &as_d);
    EXPECT_EQ(as_a.cycles, d.stats(spec, 'A', 4).cycles);
    EXPECT_EQ(as_d.cycles, d.stats(spec, 'D', 16).cycles);
}

TEST(Experiment, PrefetchStoresUnderGuardedKey)
{
    // Poison the raw cache key of the paper cell C/8 with a different
    // machine via statsFor(), then prefetch the real C/8 cell.  The
    // prefetch must consult and fill the fingerprint-disambiguated
    // key; it used to discard guardKey()'s return and test the raw
    // key, concluding the cell was already cached and leaving the
    // aliased entry to shadow it.
    ExperimentDriver d(4000, /*test_scale=*/true, 2);
    const WorkloadSpec &spec = findWorkload("espresso");
    d.statsFor(spec, MachineConfig::paper('D', 8), "C/8");
    EXPECT_EQ(d.cachedCells(), 1u);

    d.prefetch({{&spec, 'C', 8}});
    EXPECT_EQ(d.cachedCells(), 2u);     // simulated, not skipped

    // And the cached cell is really config C: stats() is a cache hit
    // that matches an unpoisoned driver bit for bit.
    const SchedStats &cached = d.stats(spec, 'C', 8);
    EXPECT_EQ(d.cachedCells(), 2u);
    ExperimentDriver fresh(4000, /*test_scale=*/true);
    EXPECT_EQ(cached.cycles, fresh.stats(spec, 'C', 8).cycles);
    EXPECT_EQ(cached.instructions,
              fresh.stats(spec, 'C', 8).instructions);
}
#else
TEST(ExperimentDeathTest, StatsForKeyCollisionPanicsInDebug)
{
    ExperimentDriver d(0, /*test_scale=*/true);
    const WorkloadSpec &spec = findWorkload("espresso");
    d.statsFor(spec, MachineConfig::paper('A', 4), "same-key");
    EXPECT_DEATH(
        d.statsFor(spec, MachineConfig::paper('D', 16), "same-key"),
        "aliases");
}
#endif

// --- DDSC_TRACE_LIMIT parsing ----------------------------------------

namespace
{

/** Set DDSC_TRACE_LIMIT for one scope, restoring the old value. */
class ScopedTraceLimit
{
  public:
    explicit ScopedTraceLimit(const char *value)
    {
        const char *old = std::getenv("DDSC_TRACE_LIMIT");
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value)
            ::setenv("DDSC_TRACE_LIMIT", value, 1);
        else
            ::unsetenv("DDSC_TRACE_LIMIT");
    }

    ~ScopedTraceLimit()
    {
        if (had_)
            ::setenv("DDSC_TRACE_LIMIT", saved_.c_str(), 1);
        else
            ::unsetenv("DDSC_TRACE_LIMIT");
    }

  private:
    std::string saved_;
    bool had_;
};

} // anonymous namespace

TEST(Experiment, EnvTraceLimitUnsetIsUnlimited)
{
    ScopedTraceLimit env(nullptr);
    EXPECT_EQ(envTraceLimit(), 0u);
}

TEST(Experiment, EnvTraceLimitParsesPlainNumbers)
{
    ScopedTraceLimit env("250000000");
    EXPECT_EQ(envTraceLimit(), 250000000u);
}

TEST(Experiment, EnvTraceLimitZeroMeansUnlimited)
{
    ScopedTraceLimit env("0");
    EXPECT_EQ(envTraceLimit(), 0u);
}

TEST(Experiment, EnvTraceLimitRejectsMalformedValues)
{
    for (const char *bad : {"", "abc", "12cats", "0x10", " 5", "-3"}) {
        ScopedTraceLimit env(bad);
        EXPECT_EQ(envTraceLimit(), 0u) << "'" << bad << "'";
    }
}

TEST(Experiment, EnvTraceLimitClampsHugeValues)
{
    // One digit beyond 2^64-1: out of range clamps to "unlimited in
    // practice" rather than silently wrapping.
    ScopedTraceLimit env("99999999999999999999");
    EXPECT_EQ(envTraceLimit(),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Experiment, EnvTraceLimitMaxUint64IsAccepted)
{
    ScopedTraceLimit env("18446744073709551615");
    EXPECT_EQ(envTraceLimit(),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Experiment, SpeedupOfBaseIsOne)
{
    EXPECT_NEAR(driver().hmeanSpeedup(ExperimentDriver::everything(),
                                      'A', 8), 1.0, 1e-12);
}

TEST(Experiment, HmeanIpcBetweenMinAndMax)
{
    const auto set = ExperimentDriver::everything();
    const double hm = driver().hmeanIpc(set, 'D', 8);
    double lo = 1e9, hi = 0.0;
    for (const WorkloadSpec *spec : set) {
        const double ipc = driver().stats(*spec, 'D', 8).ipc();
        lo = std::min(lo, ipc);
        hi = std::max(hi, ipc);
    }
    EXPECT_GE(hm, lo - 1e-12);
    EXPECT_LE(hm, hi + 1e-12);
}

TEST(Experiment, MappedTraceDirIsBitIdenticalToInMemory)
{
    // A driver spilling its traces to mmap'd v4 files must be
    // indistinguishable from the in-memory driver: same trace digests,
    // same per-cell stats digests.  This is the interchangeability
    // contract --trace-dir relies on.
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "ddsc_experiment_mapped_equiv").string();
    std::filesystem::remove_all(dir);

    ExperimentDriver mapped(4000, /*test_scale=*/true);
    mapped.setTraceDir(dir);
    mapped.setTraceBudgetMb(1);     // force evictions along the way
    ExperimentDriver vector(4000, /*test_scale=*/true);

    const WorkloadSpec &espresso = findWorkload("espresso");
    const WorkloadSpec &li = findWorkload("li");
    for (const WorkloadSpec *spec : {&espresso, &li}) {
        EXPECT_EQ(mapped.traceDigest(*spec), vector.traceDigest(*spec));
        EXPECT_EQ(mapped.trace(*spec).recordCount(),
                  vector.trace(*spec).recordCount());
        for (const char config : {'A', 'D'}) {
            EXPECT_EQ(digestSchedStats(mapped.stats(*spec, config, 4)),
                      digestSchedStats(vector.stats(*spec, config, 4)))
                << spec->name << "/" << config;
        }
    }

    // The spill really happened (counters are live) and the in-memory
    // driver charges nothing.
    const TraceResidencyManager::Counters residency =
        mapped.traceResidency();
    EXPECT_GT(residency.mappedBytes, 0u);
    EXPECT_EQ(residency.budgetBytes, 1u << 20);
    EXPECT_EQ(vector.traceResidency().mappedBytes, 0u);
    std::filesystem::remove_all(dir);
}

TEST(Experiment, MappedTraceDirReusesSpilledFiles)
{
    // A second driver pointed at the same directory must reuse the
    // spilled files (probe matches digest+count) rather than re-spill:
    // the file mtimes stay put and the digests still agree.
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "ddsc_experiment_mapped_reuse").string();
    std::filesystem::remove_all(dir);
    const WorkloadSpec &spec = findWorkload("compress");

    ExperimentDriver first(4000, /*test_scale=*/true);
    first.setTraceDir(dir);
    const std::uint64_t digest = first.traceDigest(spec);

    std::string spilled;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".trc")
            spilled = entry.path().string();
    }
    ASSERT_FALSE(spilled.empty());
    const auto mtime = std::filesystem::last_write_time(spilled);

    ExperimentDriver second(4000, /*test_scale=*/true);
    second.setTraceDir(dir);
    EXPECT_EQ(second.traceDigest(spec), digest);
    EXPECT_EQ(std::filesystem::last_write_time(spilled), mtime);
    std::filesystem::remove_all(dir);
}

TEST(Experiment, SchedulerBranchStatsMatchStandalonePredictor)
{
    // The scheduler trains the combining predictor at fetch (window
    // insertion) in program order, so its accuracy must equal running
    // the predictor standalone over the branch stream -- the
    // consistency between Table 2's bench and the simulator proper.
    const WorkloadSpec &spec = findWorkload("espresso");
    const SchedStats &sched = driver().stats(spec, 'A', 8);

    auto predictor = makePaperPredictor();
    const std::unique_ptr<TraceSource> trace =
        driver().trace(spec).cursor();
    TraceRecord rec;
    std::uint64_t branches = 0, correct = 0;
    while (trace->next(rec)) {
        if (rec.isCondBranch()) {
            ++branches;
            if (predictor->predictAndUpdate(rec.pc, rec.taken))
                ++correct;
        }
    }
    EXPECT_EQ(sched.condBranches, branches);
    EXPECT_EQ(sched.condBranches - sched.mispredicts, correct);
}

// --- the paper's qualitative invariants, per benchmark ---------------

class PaperInvariants : public testing::TestWithParam<const char *>
{
};

TEST_P(PaperInvariants, ConfigurationOrdering)
{
    const WorkloadSpec &spec = findWorkload(GetParam());
    for (const unsigned w : {4u, 16u}) {
        const double a = driver().stats(spec, 'A', w).ipc();
        const double b = driver().stats(spec, 'B', w).ipc();
        const double c = driver().stats(spec, 'C', w).ipc();
        const double d = driver().stats(spec, 'D', w).ipc();
        const double e = driver().stats(spec, 'E', w).ipc();
        // Each mechanism helps, up to greedy-scheduling effects: issue
        // is oldest-ready-first (not optimal), so accelerating
        // non-critical work can steal narrow-width slots from the
        // critical chain (li loses ~3% from collapsing at width 4 this
        // way), and collapse formation depends on window co-residency.
        // Allow 5% per benchmark; aggregate-level monotonicity is
        // asserted strictly below.
        EXPECT_GE(b, a * 0.95) << spec.name << " w" << w;
        EXPECT_GE(c, a * 0.95) << spec.name << " w" << w;
        EXPECT_GE(d, c * 0.95) << spec.name << " w" << w;
        EXPECT_GE(e, d * 0.95) << spec.name << " w" << w;
    }
}

TEST_P(PaperInvariants, IpcDoesNotExceedWidth)
{
    const WorkloadSpec &spec = findWorkload(GetParam());
    for (const char config : {'A', 'D', 'E'}) {
        for (const unsigned w : {4u, 8u}) {
            EXPECT_LE(driver().stats(spec, config, w).ipc(),
                      static_cast<double>(w) + 1e-12)
                << spec.name << config << w;
        }
    }
}

TEST_P(PaperInvariants, WiderMachinesAreNotSlower)
{
    const WorkloadSpec &spec = findWorkload(GetParam());
    for (const char config : {'A', 'D'}) {
        const double w4 = driver().stats(spec, config, 4).ipc();
        const double w16 = driver().stats(spec, config, 16).ipc();
        EXPECT_GE(w16, w4 * 0.99) << spec.name << config;
    }
}

TEST_P(PaperInvariants, LoadClassesPartitionLoads)
{
    const WorkloadSpec &spec = findWorkload(GetParam());
    const SchedStats &stats = driver().stats(spec, 'D', 8);
    std::uint64_t sum = 0;
    for (const std::uint64_t n : stats.loadClasses)
        sum += n;
    EXPECT_EQ(sum, stats.loads);
    EXPECT_GT(stats.loads, 0u);
}

TEST_P(PaperInvariants, CollapseDistancesAreMostlyShort)
{
    // Distances can exceed the window capacity (a stuck producer's
    // younger neighbours issue and are replaced), but the bulk must be
    // short -- the paper's Figure 10 finding.
    const WorkloadSpec &spec = findWorkload(GetParam());
    for (const unsigned w : {4u, 16u}) {
        const SchedStats &stats = driver().stats(spec, 'D', w);
        EXPECT_GT(stats.collapse.distances().cumulativeAt(2 * w), 0.85)
            << spec.name << " w" << w;
    }
}

TEST_P(PaperInvariants, SubstantialFractionCollapses)
{
    // The paper reports 29-47%; our denser integer analogues collapse
    // more, but every benchmark must show a substantial fraction at
    // every width.
    const WorkloadSpec &spec = findWorkload(GetParam());
    for (const unsigned w : {4u, 32u}) {
        EXPECT_GT(driver().stats(spec, 'D', w).pctCollapsed(), 25.0)
            << spec.name << " w" << w;
    }
}

TEST_P(PaperInvariants, CategoriesSumToAllEvents)
{
    const WorkloadSpec &spec = findWorkload(GetParam());
    const CollapseStats &c = driver().stats(spec, 'D', 16).collapse;
    EXPECT_EQ(c.eventsOf(CollapseCategory::ThreeOne) +
              c.eventsOf(CollapseCategory::FourOne) +
              c.eventsOf(CollapseCategory::ZeroOp),
              c.events());
    EXPECT_EQ(c.pairEvents() + c.tripleEvents(), c.events());
}

TEST_P(PaperInvariants, BranchAccuracyIsInACredibleBand)
{
    const WorkloadSpec &spec = findWorkload(GetParam());
    const SchedStats &stats = driver().stats(spec, 'A', 8);
    EXPECT_GT(stats.branchAccuracy(), 70.0) << spec.name;
    EXPECT_LE(stats.branchAccuracy(), 100.0) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PaperInvariants,
                         testing::Values("compress", "espresso",
                                         "eqntott", "li", "go", "ijpeg"));

// --- pointer-chasing contrast (paper section 5.2) ---------------------

TEST(PaperFindings, StridePredictionFailsOnPointerChasing)
{
    // Fraction of loads predicted correctly under D at width 8:
    // pointer-chasing benchmarks must be far below the others.
    const double pc = driver().meanLoadClassPct(
        workloadSubset(true), 'D', 8, LoadClass::PredictedCorrect);
    const double npc = driver().meanLoadClassPct(
        workloadSubset(false), 'D', 8, LoadClass::PredictedCorrect);
    EXPECT_LT(pc, npc);
}

TEST(PaperFindings, RealSpeculationGainsLittleOnPointerChasing)
{
    const double gain_pc =
        driver().hmeanSpeedup(workloadSubset(true), 'B', 8);
    const double gain_npc =
        driver().hmeanSpeedup(workloadSubset(false), 'B', 8);
    EXPECT_LT(gain_pc, gain_npc);
    EXPECT_LT(gain_pc, 1.15);   // "5%-9%" in the paper
}

TEST(PaperFindings, AggregateOrderingHolds)
{
    // Over the full benchmark set the paper's ordering is strict:
    // E >= D >= C >= A and B >= A in harmonic-mean speedup.
    const auto set = ExperimentDriver::everything();
    for (const unsigned w : {4u, 16u}) {
        const double b = driver().hmeanSpeedup(set, 'B', w);
        const double c = driver().hmeanSpeedup(set, 'C', w);
        const double d = driver().hmeanSpeedup(set, 'D', w);
        const double e = driver().hmeanSpeedup(set, 'E', w);
        EXPECT_GE(b, 1.0) << w;
        EXPECT_GT(c, 1.0) << w;
        EXPECT_GE(d, c) << w;
        EXPECT_GE(e, d) << w;
    }
}

TEST(PaperFindings, CollapsingContributesTheMajority)
{
    // Speedup(C) > Speedup(B) on the full set (the paper's headline:
    // d-collapsing is responsible for the majority of the gains).
    const auto set = ExperimentDriver::everything();
    EXPECT_GT(driver().hmeanSpeedup(set, 'C', 8),
              driver().hmeanSpeedup(set, 'B', 8));
}

TEST(PaperFindings, IdealBeatsRealMoreOnPointerChasing)
{
    const double drop_pc =
        driver().hmeanSpeedup(workloadSubset(true), 'E', 16) -
        driver().hmeanSpeedup(workloadSubset(true), 'D', 16);
    const double drop_npc =
        driver().hmeanSpeedup(workloadSubset(false), 'E', 16) -
        driver().hmeanSpeedup(workloadSubset(false), 'D', 16);
    EXPECT_GT(drop_pc, drop_npc);
}

TEST(PaperFindings, LiLoadsDefeatTheStrideTable)
{
    // The cdr chain walks an LCG permutation: under D nearly nothing
    // is predicted correctly.
    const SchedStats &stats =
        driver().stats(findWorkload("li"), 'D', 8);
    EXPECT_LT(stats.loadClassPct(LoadClass::PredictedCorrect), 10.0);
    EXPECT_GT(stats.loadClassPct(LoadClass::NotPredicted), 50.0);
}

TEST(PaperFindings, RegularCodesFeedTheStrideTable)
{
    // espresso's strided cube scans are bread and butter for the
    // two-delta table: ready or predicted-correctly dominates.
    const SchedStats &stats =
        driver().stats(findWorkload("espresso"), 'D', 8);
    const double covered =
        stats.loadClassPct(LoadClass::Ready) +
        stats.loadClassPct(LoadClass::PredictedCorrect);
    EXPECT_GT(covered, 60.0);
}

TEST(PaperFindings, MostCollapseDistancesAreShort)
{
    // "The distance separating the collapsed instructions is nearly
    // always less than 8" -- even at large widths.
    const CollapseStats merged = driver().mergedCollapse(
        ExperimentDriver::everything(), 'D', 32);
    EXPECT_GT(merged.distances().cumulativeAt(7), 0.60);
}

// --- durability: result store + fault containment ---------------------

/** Canonical byte encoding of @p s, minus the trailing wallNanos
 *  field (encoded last; it is the one field allowed to differ between
 *  bit-identical runs). */
std::string
encodedSansWall(const SchedStats &s)
{
    std::string out;
    encodeSchedStats(out, s);
    out.resize(out.size() - 8);
    return out;
}

/** Full encoding, wallNanos included (store round trips preserve it). */
std::string
encoded(const SchedStats &s)
{
    std::string out;
    encodeSchedStats(out, s);
    return out;
}

/** Fresh empty directory under the test temp root. */
std::filesystem::path
scratchStoreDir(const char *leaf)
{
    const std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) / leaf;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(Durability, StoreResumeServesBitIdenticalCells)
{
    const auto dir = scratchStoreDir("exp-store-resume");
    const WorkloadSpec &spec = findWorkload("espresso");
    const std::vector<ExperimentCell> cells = {{&spec, 'A', 4},
                                               {&spec, 'C', 8}};

    std::string first_a, first_c;
    {
        ExperimentDriver d(4000, /*test_scale=*/true, 2);
        ResultStore store(dir);
        d.attachStore(&store);
        d.prefetch(cells);
        EXPECT_EQ(d.storeHits(), 0u);
        EXPECT_EQ(store.size(), 2u);
        first_a = encoded(d.stats(spec, 'A', 4));
        first_c = encoded(d.stats(spec, 'C', 8));
    }

    // A fresh driver over the same traces is served both cells from
    // disk, bit for bit (wall time included: it is the stored run's).
    ExperimentDriver d(4000, /*test_scale=*/true, 2);
    ResultStore store(dir);
    EXPECT_EQ(store.loadReport().loaded, 2u);
    EXPECT_EQ(store.loadReport().discarded, 0u);
    d.attachStore(&store);
    d.prefetch(cells);
    EXPECT_EQ(d.storeHits(), 2u);
    EXPECT_EQ(encoded(d.stats(spec, 'A', 4)), first_a);
    EXPECT_EQ(encoded(d.stats(spec, 'C', 8)), first_c);
}

TEST(Durability, StaleStoreEntriesAreResimulated)
{
    // Same key, different trace length => different digest: the store
    // entry must be treated as a miss, not served.
    const auto dir = scratchStoreDir("exp-store-stale");
    const WorkloadSpec &spec = findWorkload("espresso");
    {
        ExperimentDriver d(2000, /*test_scale=*/true, 1);
        ResultStore store(dir);
        d.attachStore(&store);
        d.prefetch({{&spec, 'A', 4}});
        EXPECT_EQ(store.size(), 1u);
    }

    ExperimentDriver d(4000, /*test_scale=*/true, 1);
    ResultStore store(dir);
    d.attachStore(&store);
    d.prefetch({{&spec, 'A', 4}});
    EXPECT_EQ(d.storeHits(), 0u);

    ExperimentDriver clean(4000, /*test_scale=*/true, 1);
    EXPECT_EQ(encodedSansWall(d.stats(spec, 'A', 4)),
              encodedSansWall(clean.stats(spec, 'A', 4)));
}

TEST(Durability, ConcurrentIdenticalPrefetchesCountStoreHitsOnce)
{
    // Two sessions of a warm ddsc-served asking for the same sweep
    // race their prefetch() calls into one driver.  Both may find a
    // missing cell in the store; only the one whose cache insert wins
    // may count the hit, or --info would overstate store traffic.
    const auto dir = scratchStoreDir("exp-store-concurrent-hits");
    const WorkloadSpec &spec = findWorkload("espresso");
    const std::vector<ExperimentCell> cells = {
        {&spec, 'A', 4}, {&spec, 'C', 4}, {&spec, 'D', 4},
        {&spec, 'A', 8}, {&spec, 'C', 8}, {&spec, 'D', 8}};
    {
        ExperimentDriver d(4000, /*test_scale=*/true, 2);
        ResultStore store(dir);
        d.attachStore(&store);
        d.prefetch(cells);
        EXPECT_EQ(store.size(), cells.size());
    }

    ExperimentDriver d(4000, /*test_scale=*/true, 4);
    ResultStore store(dir);
    d.attachStore(&store);
    std::thread racer([&]() { d.prefetch(cells); });
    d.prefetch(cells);
    racer.join();

    EXPECT_EQ(d.storeHits(), cells.size());
    EXPECT_EQ(d.simulatedCells(), 0u);
    EXPECT_EQ(d.cachedCells(), cells.size());
}

#ifndef DDSC_NO_FAULT_INJECTION

/** Disarm the injection framework when the test exits, pass or fail. */
class ScopedFault
{
  public:
    explicit ScopedFault(const char *spec) { support::faultArm(spec); }
    ~ScopedFault() { support::faultArm(""); }
};

TEST(Durability, PoisonedCellIsQuarantinedOthersSurvive)
{
    const auto dir = scratchStoreDir("exp-store-quarantine");
    const WorkloadSpec &spec = findWorkload("espresso");
    ScopedFault fault("cell-throw:espresso/C/8");

    ExperimentDriver d(4000, /*test_scale=*/true, 2);
    ResultStore store(dir);
    d.attachStore(&store);
    d.prefetch({{&spec, 'A', 4}, {&spec, 'C', 8}, {&spec, 'D', 4}});

    const std::vector<CellFailure> report = d.quarantineReport();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_EQ(report[0].key, "espresso/C/8");
    EXPECT_EQ(report[0].attempts, ExperimentDriver::kCellAttempts);
    EXPECT_NE(report[0].message.find("injected fault"),
              std::string::npos);
    EXPECT_THROW(d.stats(spec, 'C', 8), CellQuarantined);
    EXPECT_EQ(store.size(), 2u);    // only the survivors persisted

    // Every surviving cell matches a clean serial driver bit for bit.
    ExperimentDriver clean(4000, /*test_scale=*/true, 1);
    EXPECT_EQ(encodedSansWall(d.stats(spec, 'A', 4)),
              encodedSansWall(clean.stats(spec, 'A', 4)));
    EXPECT_EQ(encodedSansWall(d.stats(spec, 'D', 4)),
              encodedSansWall(clean.stats(spec, 'D', 4)));
}

TEST(Durability, TransientFaultRecoversInvisibly)
{
    const WorkloadSpec &spec = findWorkload("espresso");
    ExperimentDriver clean(4000, /*test_scale=*/true, 1);
    const std::string want =
        encodedSansWall(clean.stats(spec, 'A', 4));

    // The first attempt at the cell throws; the bounded retry must
    // absorb it with no quarantine entry and an identical result.
    ScopedFault fault("cell-throw:1");
    ExperimentDriver d(4000, /*test_scale=*/true, 1);
    d.prefetch({{&spec, 'A', 4}});
    EXPECT_TRUE(d.quarantineReport().empty());
    EXPECT_EQ(encodedSansWall(d.stats(spec, 'A', 4)), want);
}

TEST(Durability, BatchedQuarantineSparesSiblingsOfThePass)
{
    // Three widths of config A form ONE batched group (same front-end
    // fingerprint), so the poisoned 8-wide cell throws while its
    // siblings are part-way through the very same front-end pass.
    // The persistent fault also defeats the per-cell retries, so the
    // cell quarantines — and the siblings must still finish
    // bit-identical to a clean legacy-path driver.
    const auto dir = scratchStoreDir("exp-store-batched-quarantine");
    const WorkloadSpec &spec = findWorkload("espresso");
    ScopedFault fault("cell-throw:espresso/A/8");

    ExperimentDriver d(4000, /*test_scale=*/true, 2);
    ASSERT_TRUE(d.batched());
    ResultStore store(dir);
    d.attachStore(&store);
    d.prefetch({{&spec, 'A', 4}, {&spec, 'A', 8}, {&spec, 'A', 16}});

    const std::vector<CellFailure> report = d.quarantineReport();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_EQ(report[0].key, "espresso/A/8");
    EXPECT_EQ(report[0].attempts, ExperimentDriver::kCellAttempts);
    EXPECT_THROW(d.stats(spec, 'A', 8), CellQuarantined);
    EXPECT_EQ(store.size(), 2u);    // only the survivors persisted

    ExperimentDriver clean(4000, /*test_scale=*/true, 1);
    clean.setBatched(false);
    EXPECT_EQ(encodedSansWall(d.stats(spec, 'A', 4)),
              encodedSansWall(clean.stats(spec, 'A', 4)));
    EXPECT_EQ(encodedSansWall(d.stats(spec, 'A', 16)),
              encodedSansWall(clean.stats(spec, 'A', 16)));
}

TEST(Durability, BatchedResumeAfterPartialSweepIsByteIdentical)
{
    // Kill-and-resume across the batch boundary: a batched sweep dies
    // with one cell of the group poisoned, leaving the survivors
    // checkpointed.  A fresh driver over the same store resumes,
    // re-simulates only the missing cell, and every cell's encoded
    // bytes match a clean legacy-path run.
    const auto dir = scratchStoreDir("exp-store-batched-resume");
    const WorkloadSpec &spec = findWorkload("espresso");
    const std::vector<ExperimentCell> cells = {
        {&spec, 'A', 4}, {&spec, 'A', 8}, {&spec, 'A', 16}};
    {
        ScopedFault fault("cell-throw:espresso/A/8");
        ExperimentDriver d(4000, /*test_scale=*/true, 2);
        ResultStore store(dir);
        d.attachStore(&store);
        d.prefetch(cells);
        EXPECT_EQ(store.size(), 2u);
    }

    ExperimentDriver d(4000, /*test_scale=*/true, 2);
    ResultStore store(dir);
    EXPECT_EQ(store.loadReport().loaded, 2u);
    d.attachStore(&store);
    d.prefetch(cells);
    EXPECT_EQ(d.storeHits(), 2u);
    EXPECT_EQ(d.simulatedCells(), 1u);
    EXPECT_TRUE(d.quarantineReport().empty());
    EXPECT_EQ(store.size(), 3u);

    ExperimentDriver clean(4000, /*test_scale=*/true, 1);
    clean.setBatched(false);
    for (const ExperimentCell &cell : cells)
        EXPECT_EQ(encodedSansWall(d.stats(spec, cell.config,
                                          cell.width)),
                  encodedSansWall(clean.stats(spec, cell.config,
                                              cell.width)))
            << cell.config << "/" << cell.width;
}

#endif // DDSC_NO_FAULT_INJECTION

} // anonymous namespace
} // namespace ddsc
