/**
 * @file
 * Unit tests for the persistent result cache (sim/result_store.hh):
 * SchedStats serialization round-trips, crash recovery at every
 * possible truncation boundary, torn-write fault injection, staleness
 * rejection (fingerprint, trace digest, schema), foreign-file safety,
 * and compaction.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/result_store.hh"
#include "support/fault.hh"
#include "support/wire.hh"

namespace ddsc
{
namespace
{

namespace fs = std::filesystem;

/** A SchedStats with every field populated distinctively. */
SchedStats
sampleStats(std::uint64_t salt)
{
    SchedStats s;
    s.instructions = 1000 + salt;
    s.cycles = 400 + salt;
    s.condBranches = 90 + salt;
    s.mispredicts = 7 + salt;
    s.ctiPredictions = 21 + salt;
    s.ctiMispredicts = 2 + salt;
    s.loads = 150 + salt;
    for (unsigned i = 0; i < kNumLoadClasses; ++i)
        s.loadClasses[i] = 10 * i + salt;
    s.eliminatedInstructions = 12 + salt;
    s.valuePredHits = 31 + salt;
    s.valuePredWrong = 3 + salt;
    s.issuedPerCycle.add(0, 40 + salt);
    s.issuedPerCycle.add(4, 100);
    s.issuedPerCycle.add(16, 2);
    CollapseEvent ev;
    ev.category = CollapseCategory::ThreeOne;
    ev.groupSize = 2;
    ev.signature = "add+add";
    ev.distanceCount = 1;
    ev.distances[0] = 3 + static_cast<unsigned>(salt % 5);
    s.collapse.record(ev);
    for (std::uint64_t i = 0; i < 17 + salt; ++i)
        s.collapse.noteCollapsedInstruction();
    s.wallNanos = 123456 + salt;
    return s;
}

void
expectStatsEqual(const SchedStats &a, const SchedStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.ctiPredictions, b.ctiPredictions);
    EXPECT_EQ(a.ctiMispredicts, b.ctiMispredicts);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.loadClasses, b.loadClasses);
    EXPECT_EQ(a.eliminatedInstructions, b.eliminatedInstructions);
    EXPECT_EQ(a.valuePredHits, b.valuePredHits);
    EXPECT_EQ(a.valuePredWrong, b.valuePredWrong);
    EXPECT_EQ(a.issuedPerCycle.raw(), b.issuedPerCycle.raw());
    EXPECT_EQ(a.issuedPerCycle.samples(), b.issuedPerCycle.samples());
    EXPECT_EQ(a.collapse.events(), b.collapse.events());
    EXPECT_EQ(a.collapse.collapsedInstructions(),
              b.collapse.collapsedInstructions());
    EXPECT_EQ(a.collapse.distances().raw(),
              b.collapse.distances().raw());
    EXPECT_EQ(a.wallNanos, b.wallNanos);
}

/** Fresh scratch directory for one test. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    fs::remove_all(dir);
    return dir;
}

TEST(SchedStatsCodec, RoundTripsEveryField)
{
    const SchedStats original = sampleStats(5);
    std::string bytes;
    encodeSchedStats(bytes, original);
    support::wire::Reader in(bytes);
    SchedStats decoded;
    ASSERT_TRUE(decodeSchedStats(in, decoded));
    EXPECT_EQ(in.remaining(), 0u);
    expectStatsEqual(original, decoded);
}

TEST(SchedStatsCodec, EveryTruncationFailsCleanly)
{
    const SchedStats original = sampleStats(9);
    std::string bytes;
    encodeSchedStats(bytes, original);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        support::wire::Reader in(
            std::string_view(bytes).substr(0, cut));
        SchedStats decoded;
        EXPECT_FALSE(decodeSchedStats(in, decoded))
            << "cut at byte " << cut;
    }
}

TEST(ResultStore, PersistsAcrossReopen)
{
    const std::string dir = scratchDir("store_reopen");
    const SchedStats stats = sampleStats(1);
    {
        ResultStore store(dir);
        EXPECT_EQ(store.loadReport().loaded, 0u);
        store.append("li/D/16", "fp-d16", 111, stats);
        store.append("go/A/4", "fp-a4", 222, sampleStats(2));
        EXPECT_EQ(store.size(), 2u);
    }
    ResultStore reopened(dir);
    EXPECT_EQ(reopened.loadReport().loaded, 2u);
    EXPECT_EQ(reopened.loadReport().discarded, 0u);
    const SchedStats *hit = reopened.lookup("li/D/16", "fp-d16", 111);
    ASSERT_NE(hit, nullptr);
    expectStatsEqual(stats, *hit);
}

TEST(ResultStore, LaterAppendSupersedesEarlier)
{
    const std::string dir = scratchDir("store_supersede");
    {
        ResultStore store(dir);
        store.append("li/D/16", "fp", 1, sampleStats(1));
        store.append("li/D/16", "fp", 1, sampleStats(8));
    }
    ResultStore reopened(dir);
    EXPECT_EQ(reopened.loadReport().loaded, 1u);
    const SchedStats *hit = reopened.lookup("li/D/16", "fp", 1);
    ASSERT_NE(hit, nullptr);
    expectStatsEqual(sampleStats(8), *hit);
}

TEST(ResultStore, StaleFingerprintIsAMiss)
{
    const std::string dir = scratchDir("store_stale_fp");
    ResultStore store(dir);
    store.append("li/D/16", "fp-old", 1, sampleStats(1));
    EXPECT_EQ(store.lookup("li/D/16", "fp-new", 1), nullptr);
    // The stale entry is dropped, not resurrected.
    EXPECT_EQ(store.lookup("li/D/16", "fp-old", 1), nullptr);
}

TEST(ResultStore, StaleTraceDigestIsAMiss)
{
    const std::string dir = scratchDir("store_stale_digest");
    ResultStore store(dir);
    store.append("li/D/16", "fp", 1, sampleStats(1));
    EXPECT_EQ(store.lookup("li/D/16", "fp", 2), nullptr);
    EXPECT_EQ(store.lookup("li/D/16", "fp", 1), nullptr);
}

TEST(ResultStore, SchemaBumpDiscardsLoudly)
{
    const std::string dir = scratchDir("store_schema");
    {
        ResultStore store(dir);
        store.append("li/D/16", "fp", 1, sampleStats(1));
    }
    // Bump the schema field in place (byte 8, little-endian u32).
    const std::string path =
        (fs::path(dir) / "results.ddsc").string();
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(8);
    const char bumped = static_cast<char>(ResultStore::kSchema + 1);
    file.write(&bumped, 1);
    file.close();

    ResultStore reopened(dir);
    EXPECT_TRUE(reopened.loadReport().schemaReset);
    EXPECT_EQ(reopened.loadReport().loaded, 0u);
    EXPECT_EQ(reopened.lookup("li/D/16", "fp", 1), nullptr);
}

TEST(ResultStoreDeathTest, RefusesForeignFile)
{
    const std::string dir = scratchDir("store_foreign");
    fs::create_directories(dir);
    std::ofstream((fs::path(dir) / "results.ddsc").string())
        << "precious user data that is not a result store";
    EXPECT_EXIT({ ResultStore store(dir); },
                testing::ExitedWithCode(1),
                "not a ddsc result store; refusing");
}

TEST(ResultStore, TruncationSweepRecoversIntactPrefix)
{
    // The crash-recovery oracle: write n records, then for every byte
    // boundary inside the *last* record, truncate there and assert
    // the load recovers all earlier cells and reports exactly one
    // discarded entry (zero when the cut lands on the record start).
    const std::string dir = scratchDir("store_sweep");
    {
        ResultStore store(dir);
        store.append("cell/A", "fp", 1, sampleStats(1));
        store.append("cell/B", "fp", 2, sampleStats(2));
        store.append("cell/C", "fp", 3, sampleStats(3));
    }
    const std::string path =
        (fs::path(dir) / "results.ddsc").string();
    std::ifstream in(path, std::ios::binary);
    const std::string bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    in.close();

    // Locate the last record's start: records A..C are identical in
    // size, so it is header + 2/3 of the record bytes.
    ASSERT_EQ((bytes.size() - 16) % 3, 0u);
    const std::size_t record_size = (bytes.size() - 16) / 3;
    const std::size_t last_start = 16 + 2 * record_size;

    for (std::size_t cut = last_start; cut < bytes.size(); ++cut) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(cut));
        out.close();

        ResultStore store(dir);
        const StoreLoadReport &report = store.loadReport();
        EXPECT_EQ(report.loaded, 2u) << "cut at byte " << cut;
        EXPECT_EQ(report.discarded, cut == last_start ? 0u : 1u)
            << "cut at byte " << cut;
        EXPECT_NE(store.lookup("cell/A", "fp", 1), nullptr)
            << "cut at byte " << cut;
        EXPECT_NE(store.lookup("cell/B", "fp", 2), nullptr)
            << "cut at byte " << cut;
        EXPECT_EQ(store.lookup("cell/C", "fp", 3), nullptr)
            << "cut at byte " << cut;
    }
}

TEST(ResultStore, CorruptPayloadByteDiscardsTail)
{
    const std::string dir = scratchDir("store_corrupt");
    {
        ResultStore store(dir);
        store.append("cell/A", "fp", 1, sampleStats(1));
        store.append("cell/B", "fp", 2, sampleStats(2));
    }
    const std::string path =
        (fs::path(dir) / "results.ddsc").string();
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    const std::size_t record_size = (bytes.size() - 16) / 2;
    // Flip a byte inside the second record's payload.
    bytes[16 + record_size + 20] ^= static_cast<char>(0x10);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();

    ResultStore store(dir);
    EXPECT_EQ(store.loadReport().loaded, 1u);
    EXPECT_EQ(store.loadReport().discarded, 1u);
    EXPECT_NE(store.lookup("cell/A", "fp", 1), nullptr);
    EXPECT_EQ(store.lookup("cell/B", "fp", 2), nullptr);
}

TEST(ResultStore, AppendAfterTornLoadStartsAtRecordBoundary)
{
    const std::string dir = scratchDir("store_heal");
    {
        ResultStore store(dir);
        store.append("cell/A", "fp", 1, sampleStats(1));
        store.append("cell/B", "fp", 2, sampleStats(2));
    }
    const std::string path =
        (fs::path(dir) / "results.ddsc").string();
    // Tear the last record.
    fs::resize_file(path, fs::file_size(path) - 11);
    {
        ResultStore store(dir);
        EXPECT_EQ(store.loadReport().discarded, 1u);
        store.append("cell/C", "fp", 3, sampleStats(3));
    }
    // After healing + appending, everything must reload cleanly.
    ResultStore reopened(dir);
    EXPECT_EQ(reopened.loadReport().loaded, 2u);
    EXPECT_EQ(reopened.loadReport().discarded, 0u);
    EXPECT_NE(reopened.lookup("cell/A", "fp", 1), nullptr);
    EXPECT_NE(reopened.lookup("cell/C", "fp", 3), nullptr);
}

TEST(ResultStore, CompactDropsDeadBytes)
{
    const std::string dir = scratchDir("store_compact");
    ResultStore store(dir);
    store.append("cell/A", "fp", 1, sampleStats(1));
    store.append("cell/A", "fp", 1, sampleStats(2));  // superseded
    store.append("cell/B", "fp", 2, sampleStats(3));
    const std::string path = store.path();
    const auto before = fs::file_size(path);
    store.compact();
    EXPECT_LT(fs::file_size(path), before);
    // Still fully usable, in memory and on disk.
    EXPECT_NE(store.lookup("cell/A", "fp", 1), nullptr);
    store.append("cell/C", "fp", 3, sampleStats(4));
    ResultStore reopened(dir);
    EXPECT_EQ(reopened.loadReport().loaded, 3u);
    expectStatsEqual(sampleStats(2),
                     *reopened.lookup("cell/A", "fp", 1));
}

#ifndef DDSC_NO_FAULT_INJECTION
TEST(ResultStoreDeathTest, TornWriteFaultLeavesRecoverableFile)
{
    // The full checkpoint-torn-write cycle: die mid-append, then
    // prove the survivor loads every intact cell and reports exactly
    // one discarded entry.
    const std::string dir = scratchDir("store_torn_fault");
    {
        ResultStore store(dir);
        store.append("cell/A", "fp", 1, sampleStats(1));
    }
    EXPECT_EXIT(
        {
            support::faultArm("checkpoint-torn-write:1");
            ResultStore store(dir);
            store.append("cell/B", "fp", 2, sampleStats(2));
        },
        testing::ExitedWithCode(1),
        "injected fault: killed while appending 'cell/B'");

    ResultStore survivor(dir);
    EXPECT_EQ(survivor.loadReport().loaded, 1u);
    EXPECT_EQ(survivor.loadReport().discarded, 1u);
    EXPECT_NE(survivor.lookup("cell/A", "fp", 1), nullptr);
    EXPECT_EQ(survivor.lookup("cell/B", "fp", 2), nullptr);
}
#endif // DDSC_NO_FAULT_INJECTION

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(ResultStoreMerge, AbsorbFoldsDisjointStoresDurably)
{
    // The fleet case: per-shard stores hold disjoint cell slices;
    // absorbing them all yields one store that resumes everything.
    const std::string dirA = scratchDir("merge_shard_a");
    const std::string dirB = scratchDir("merge_shard_b");
    const std::string dirDest = scratchDir("merge_dest");
    {
        ResultStore a(dirA);
        a.append("go/A/4", "fp-a4", 11, sampleStats(1));
        a.append("li/A/4", "fp-a4", 12, sampleStats(2));
        ResultStore b(dirB);
        b.append("go/D/4", "fp-d4", 21, sampleStats(3));

        ResultStore dest(dirDest);
        const StoreMergeReport ra = dest.absorb(a);
        EXPECT_EQ(ra.added, 2u);
        EXPECT_EQ(ra.identical, 0u);
        EXPECT_EQ(ra.conflicts, 0u);
        const StoreMergeReport rb = dest.absorb(b);
        EXPECT_EQ(rb.added, 1u);
        EXPECT_EQ(dest.size(), 3u);
    }
    // Durable, not just in-memory: a reopen sees every merged cell.
    ResultStore reopened(dirDest);
    EXPECT_EQ(reopened.loadReport().loaded, 3u);
    ASSERT_NE(reopened.lookup("go/A/4", "fp-a4", 11), nullptr);
    ASSERT_NE(reopened.lookup("li/A/4", "fp-a4", 12), nullptr);
    const SchedStats *hit = reopened.lookup("go/D/4", "fp-d4", 21);
    ASSERT_NE(hit, nullptr);
    expectStatsEqual(sampleStats(3), *hit);
}

TEST(ResultStoreMerge, DuplicatesSkippedConflictsKeepOurs)
{
    const std::string dirA = scratchDir("merge_dup_a");
    const std::string dirDest = scratchDir("merge_dup_dest");
    ResultStore a(dirA);
    a.append("go/A/4", "fp-a4", 11, sampleStats(1));
    a.append("li/D/8", "fp-d8", 44, sampleStats(4));

    ResultStore dest(dirDest);
    dest.append("go/A/4", "fp-a4", 11, sampleStats(1));  // identical
    dest.append("li/D/8", "fp-d8", 44, sampleStats(9));  // disagrees

    const StoreMergeReport r = dest.absorb(a);
    EXPECT_EQ(r.added, 0u);
    EXPECT_EQ(r.identical, 1u);
    EXPECT_EQ(r.conflicts, 1u);

    // The conflict kept the destination's version.
    const SchedStats *kept = dest.lookup("li/D/8", "fp-d8", 44);
    ASSERT_NE(kept, nullptr);
    expectStatsEqual(sampleStats(9), *kept);
}

TEST(ResultStoreMerge, CompactedMergeBytesAreOrderIndependent)
{
    // `ddsc-store merge` + compact must be deterministic: the same
    // shard stores folded in any order produce byte-identical output
    // (compaction is key-sorted and payloads canonical), so a merge
    // can be re-run and compared, or diffed across machines.
    const std::string dirA = scratchDir("merge_det_a");
    const std::string dirB = scratchDir("merge_det_b");
    ResultStore a(dirA);
    a.append("go/A/4", "fp-a4", 11, sampleStats(1));
    a.append("li/A/4", "fp-a4", 12, sampleStats(2));
    ResultStore b(dirB);
    b.append("go/D/4", "fp-d4", 21, sampleStats(3));
    b.append("li/D/4", "fp-d4", 22, sampleStats(4));

    const std::string dirAB = scratchDir("merge_det_ab");
    const std::string dirBA = scratchDir("merge_det_ba");
    ResultStore ab(dirAB);
    ab.absorb(a);
    ab.absorb(b);
    ab.compact();
    ResultStore ba(dirBA);
    ba.absorb(b);
    ba.absorb(a);
    ba.compact();

    const std::string bytes = fileBytes(ab.path());
    EXPECT_FALSE(bytes.empty());
    EXPECT_EQ(bytes, fileBytes(ba.path()));
}

} // anonymous namespace
} // namespace ddsc
