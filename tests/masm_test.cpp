/**
 * @file
 * Unit tests for the two-pass assembler.
 */

#include <gtest/gtest.h>

#include "masm/assembler.hh"

namespace ddsc
{
namespace
{

TEST(Assembler, MinimalProgram)
{
    const AsmResult result = assemble("main:\n  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    ASSERT_EQ(result.program.text.size(), 1u);
    EXPECT_EQ(result.program.text[0].op, Opcode::HALT);
    EXPECT_EQ(result.program.entry, kTextBase);
}

TEST(Assembler, AluThreeOperandForms)
{
    const AsmResult result = assemble(
        "  add r1, r2, r3\n"
        "  sub r4, r5, -7\n"
        "  xorcc r6, r7, 0x1f\n"
        "  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    const auto &text = result.program.text;
    EXPECT_EQ(text[0].op, Opcode::ADD);
    EXPECT_EQ(text[0].rd, 1);
    EXPECT_EQ(text[0].rs1, 2);
    EXPECT_EQ(text[0].rs2, 3);
    EXPECT_FALSE(text[0].useImm);
    EXPECT_EQ(text[1].op, Opcode::SUB);
    EXPECT_TRUE(text[1].useImm);
    EXPECT_EQ(text[1].imm, -7);
    EXPECT_EQ(text[2].op, Opcode::XORCC);
    EXPECT_EQ(text[2].imm, 0x1f);
}

TEST(Assembler, RegisterAliases)
{
    const AsmResult result = assemble(
        "  add sp, sp, -16\n"
        "  mov lr, zero\n"
        "  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    EXPECT_EQ(result.program.text[0].rd, kRegSp);
    EXPECT_EQ(result.program.text[1].rd, kRegLink);
    EXPECT_EQ(result.program.text[1].rs2, kRegZero);
}

TEST(Assembler, MemoryOperandForms)
{
    const AsmResult result = assemble(
        "  ldw r1, [r2]\n"
        "  ldw r3, [r4 + 12]\n"
        "  ldb r5, [r6 - 1]\n"
        "  stw r7, [r8 + r9]\n"
        "  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    const auto &text = result.program.text;
    EXPECT_TRUE(text[0].useImm);
    EXPECT_EQ(text[0].imm, 0);
    EXPECT_EQ(text[1].imm, 12);
    EXPECT_EQ(text[2].imm, -1);
    EXPECT_EQ(text[2].op, Opcode::LDB);
    EXPECT_FALSE(text[3].useImm);
    EXPECT_EQ(text[3].rs2, 9);
    EXPECT_EQ(text[3].rd, 7);      // store value register
}

TEST(Assembler, BranchesResolveForwardAndBackwardLabels)
{
    const AsmResult result = assemble(
        "top:\n"
        "  cmp r1, r2\n"
        "  beq done\n"
        "  ba top\n"
        "done:\n"
        "  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    const auto &text = result.program.text;
    EXPECT_EQ(text[1].op, Opcode::BCC);
    EXPECT_EQ(text[1].cond, Cond::EQ);
    EXPECT_EQ(text[1].target, Program::pcOf(3));
    EXPECT_EQ(text[2].op, Opcode::BA);
    EXPECT_EQ(text[2].target, Program::pcOf(0));
}

TEST(Assembler, CmpIsSubccToR0)
{
    const AsmResult result = assemble("  cmp r3, 9\n  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    const Instruction &cmp = result.program.text[0];
    EXPECT_EQ(cmp.op, Opcode::SUBCC);
    EXPECT_EQ(cmp.rd, kRegZero);
    EXPECT_EQ(cmp.rs1, 3);
    EXPECT_EQ(cmp.imm, 9);
}

TEST(Assembler, LiSmallIsOneMove)
{
    const AsmResult result = assemble("  li r1, 100\n  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    ASSERT_EQ(result.program.text.size(), 2u);
    EXPECT_EQ(result.program.text[0].op, Opcode::MOV);
    EXPECT_EQ(result.program.text[0].imm, 100);
}

TEST(Assembler, LiWideIsSethiOr)
{
    const AsmResult result = assemble("  li r1, 0xdeadbeef\n  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    ASSERT_EQ(result.program.text.size(), 3u);
    EXPECT_EQ(result.program.text[0].op, Opcode::SETHI);
    EXPECT_EQ(result.program.text[0].imm,
              static_cast<std::int32_t>(0xdeadbeefu >> 12));
    EXPECT_EQ(result.program.text[1].op, Opcode::OR);
    EXPECT_EQ(result.program.text[1].imm,
              static_cast<std::int32_t>(0xeef));
}

TEST(Assembler, LiAlignedWideOmitsTheOr)
{
    const AsmResult result = assemble("  li r1, 0x40000000\n  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    ASSERT_EQ(result.program.text.size(), 2u);
    EXPECT_EQ(result.program.text[0].op, Opcode::SETHI);
}

TEST(Assembler, LaResolvesDataLabels)
{
    const AsmResult result = assemble(
        "  la r1, table\n"
        "  halt\n"
        ".data\n"
        "table: .word 1, 2, 3\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    ASSERT_EQ(result.program.text.size(), 3u);
    EXPECT_EQ(result.program.text[0].op, Opcode::SETHI);
    EXPECT_EQ(result.program.text[1].op, Opcode::OR);
    const std::uint32_t addr =
        (static_cast<std::uint32_t>(result.program.text[0].imm) << 12) |
        static_cast<std::uint32_t>(result.program.text[1].imm);
    EXPECT_EQ(addr, kDataBase);
}

TEST(Assembler, LabelSizingAccountsForPseudoExpansion)
{
    // The branch target after a wide li must account for li's 2 slots.
    const AsmResult result = assemble(
        "  li r1, 0x12345678\n"
        "  ba done\n"
        "done:\n"
        "  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    EXPECT_EQ(result.program.text[2].target, Program::pcOf(3));
}

TEST(Assembler, DataDirectives)
{
    const AsmResult result = assemble(
        "  halt\n"
        ".data\n"
        "bytes: .byte 1, 2, 3\n"
        ".align 4\n"
        "words: .word 0x11223344\n"
        "buf:   .space 8\n"
        "tail:  .byte 0xff\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    const auto &data = result.program.data;
    ASSERT_EQ(data.size(), 3u + 1u + 4u + 8u + 1u);
    EXPECT_EQ(data[0], 1);
    EXPECT_EQ(data[4], 0x44);   // little-endian word after align pad
    EXPECT_EQ(data[7], 0x11);
    EXPECT_EQ(data[16], 0xff);
}

TEST(Assembler, WordCanHoldALabelAddress)
{
    const AsmResult result = assemble(
        "  halt\n"
        ".data\n"
        "a: .word b\n"
        "b: .word 7\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    const auto &data = result.program.data;
    const std::uint32_t stored = data[0] | (data[1] << 8) |
        (data[2] << 16) | (static_cast<std::uint32_t>(data[3]) << 24);
    EXPECT_EQ(stored, kDataBase + 4);
}

TEST(Assembler, EquConstantsFeedImmediates)
{
    const AsmResult result = assemble(
        ".equ ITERS, 64\n"
        ".equ STEP, -4\n"
        "main:\n"
        "  cmp r1, ITERS\n"
        "  add r2, r2, STEP\n"
        "  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    EXPECT_EQ(result.program.text[0].imm, 64);
    EXPECT_EQ(result.program.text[1].imm, -4);
}

TEST(Assembler, EquOutOfRangeIsAnError)
{
    const AsmResult result = assemble(
        ".equ BIG, 100000\n"
        "  add r1, r1, BIG\n"
        "  halt\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].message.find("simm13"), std::string::npos);
}

TEST(Assembler, EquDuplicateIsAnError)
{
    const AsmResult result = assemble(
        ".equ X, 1\n"
        ".equ X, 2\n"
        "  halt\n");
    ASSERT_FALSE(result.ok());
}

TEST(Assembler, ConveniencePseudoOps)
{
    const AsmResult result = assemble(
        "  inc r3\n"
        "  dec r4\n"
        "  neg r5, r6\n"
        "  not r7, r8\n"
        "  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    const auto &text = result.program.text;
    EXPECT_EQ(text[0].op, Opcode::ADD);
    EXPECT_EQ(text[0].rd, 3);
    EXPECT_EQ(text[0].rs1, 3);
    EXPECT_EQ(text[0].imm, 1);
    EXPECT_EQ(text[1].op, Opcode::SUB);
    EXPECT_EQ(text[1].imm, 1);
    EXPECT_EQ(text[2].op, Opcode::SUB);
    EXPECT_EQ(text[2].rs1, kRegZero);
    EXPECT_EQ(text[2].rs2, 6);
    EXPECT_EQ(text[3].op, Opcode::XOR);
    EXPECT_EQ(text[3].rs1, 8);
    EXPECT_EQ(text[3].imm, -1);
}

TEST(Assembler, IndirectCallForm)
{
    const AsmResult result = assemble(
        "  calli [r9]\n"
        "  calli [r9 + 4]\n"
        "  calli [r9 + r10]\n"
        "  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    const auto &text = result.program.text;
    EXPECT_EQ(text[0].op, Opcode::CALLI);
    EXPECT_EQ(text[0].rs1, 9);
    EXPECT_TRUE(text[0].useImm);
    EXPECT_EQ(text[1].imm, 4);
    EXPECT_FALSE(text[2].useImm);
    EXPECT_EQ(text[2].rs2, 10);
}

TEST(Assembler, EntryPointIsMain)
{
    const AsmResult result = assemble(
        "helper:\n  ret\n"
        "main:\n  halt\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    EXPECT_EQ(result.program.entry, Program::pcOf(1));
}

TEST(Assembler, CommentsAndBlankLines)
{
    const AsmResult result = assemble(
        "; full line comment\n"
        "# another comment style\n"
        "\n"
        "  add r1, r2, r3   ; trailing comment\n"
        "  halt # trailing too\n");
    ASSERT_TRUE(result.ok()) << result.errorText();
    EXPECT_EQ(result.program.text.size(), 2u);
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    const AsmResult result = assemble("  frobnicate r1, r2\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].message.find("unknown mnemonic"),
              std::string::npos);
    EXPECT_EQ(result.errors[0].line, 1);
}

TEST(AssemblerErrors, ImmediateOutOfRange)
{
    const AsmResult result = assemble("  add r1, r2, 5000\n  halt\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].message.find("simm13"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedLabel)
{
    const AsmResult result = assemble("  ba nowhere\n  halt\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].message.find("undefined"),
              std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    const AsmResult result = assemble(
        "x:\n  halt\n"
        "x:\n  halt\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].message.find("duplicate"),
              std::string::npos);
}

TEST(AssemblerErrors, WrongOperandCount)
{
    const AsmResult result = assemble("  add r1, r2\n  halt\n");
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.errors[0].message.find("expects 3"),
              std::string::npos);
}

TEST(AssemblerErrors, InstructionInDataSegment)
{
    const AsmResult result = assemble(
        "  halt\n"
        ".data\n"
        "  add r1, r2, r3\n");
    ASSERT_FALSE(result.ok());
}

TEST(AssemblerErrors, BadRegister)
{
    const AsmResult result = assemble("  add r99, r1, r2\n  halt\n");
    ASSERT_FALSE(result.ok());
}

TEST(AssemblerErrors, EmptyProgram)
{
    const AsmResult result = assemble("; nothing\n");
    ASSERT_FALSE(result.ok());
}

TEST(AssemblerErrors, MultipleErrorsAllReported)
{
    const AsmResult result = assemble(
        "  bogus r1\n"
        "  add r1, r2\n"
        "  halt\n");
    EXPECT_EQ(result.errors.size(), 2u);
}

} // anonymous namespace
} // namespace ddsc
