/**
 * @file
 * The fleet router in-process: a real Router fronting real Servers
 * ("shards") on ephemeral ports, driven through the real net::Client.
 *
 * The load-bearing guarantees:
 *
 *  - Routed byte-identity: for any query, the bytes a client renders
 *    from the router equal the bytes a fresh local
 *    ddsc-matrix-style run renders.  The fan-out/merge adds
 *    distribution, never content.
 *  - Broken-shard degradation: a shard whose flap breaker tripped
 *    fails its cells *typed* — n/a aggregates plus per-cell failures,
 *    quarantine semantics — while the other shards' cells keep
 *    serving bytes identical to local.
 *  - Restart riding: a shard whose port file appears late (the window
 *    a supervised restart opens) is reached through the retry policy
 *    without the client seeing anything but the answer.
 *  - Health aggregation: one ShardHealth per shard with the
 *    per-shard state/generation view, scalars summed across the
 *    reachable fleet.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "serve/router.hh"
#include "serve/server.hh"
#include "sim/matrix_query.hh"
#include "support/portfile.hh"

namespace ddsc
{
namespace
{

/** A throwaway directory for the port files a router reads. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/ddsc-router-test-XXXXXX";
        const char *dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        path_ = dir;
    }

    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

/** K real shard servers plus a router over them, all in-process. */
class FleetFixture
{
  public:
    explicit FleetFixture(std::size_t shard_count,
                          net::RetryPolicy retry = {.retries = 10,
                                                    .budgetMs = 20000})
    {
        for (std::size_t i = 0; i < shard_count; ++i) {
            serve::ServerOptions opts;
            opts.port = 0;
            opts.testScale = true;
            opts.jobs = 2;
            shards_.push_back(
                std::make_unique<serve::Server>(opts));
            EXPECT_TRUE(shards_.back()->valid());
            shardThreads_.emplace_back(
                [srv = shards_.back().get()]() { srv->run(); });
            const std::string port_file =
                dir_.file("shard-" + std::to_string(i) + ".port");
            support::writeOneLineAtomic(port_file,
                                        shards_.back()->port());
            fleet_.add(port_file, "");
        }

        serve::RouterOptions opts;
        opts.port = 0;
        opts.retry = retry;
        router_ = std::make_unique<serve::Router>(opts, fleet_);
        EXPECT_TRUE(router_->valid());
        routerThread_ =
            std::thread([this]() { router_->run(); });
    }

    ~FleetFixture()
    {
        router_->stop();
        routerThread_.join();
        for (auto &shard : shards_)
            shard->stop();
        for (std::thread &t : shardThreads_)
            t.join();
    }

    serve::Router &router() { return *router_; }
    serve::FleetState &fleet() { return fleet_; }
    serve::Server &shard(std::size_t i) { return *shards_[i]; }
    std::uint16_t port() const { return router_->port(); }
    const TempDir &dir() const { return dir_; }

  private:
    TempDir dir_;
    serve::FleetState fleet_;
    std::vector<std::unique_ptr<serve::Server>> shards_;
    std::vector<std::thread> shardThreads_;
    std::unique_ptr<serve::Router> router_;
    std::thread routerThread_;
};

MatrixQuery
smallQuery()
{
    MatrixQuery query;
    query.set = "pc";
    query.configs = "AD";
    query.widths = {4};
    query.metric = "ipc";
    return query;
}

TEST(Router, PartitionIsDeterministicAndInRange)
{
    for (std::size_t k : {1u, 2u, 3u, 7u}) {
        for (char config : {'A', 'B', 'C', 'D', 'E'}) {
            for (unsigned width : {1u, 4u, 8u, 2048u}) {
                const unsigned s =
                    serve::shardForCell(config, width, k);
                EXPECT_LT(s, k);
                EXPECT_EQ(s, serve::shardForCell(config, width, k));
            }
        }
    }
    // The placement must discriminate: with a handful of shards the
    // paper matrix's columns cannot all land on shard 0.
    std::set<unsigned> used;
    for (char config : {'A', 'B', 'C', 'D', 'E'})
        for (unsigned width : {1u, 4u, 8u, 16u, 2048u})
            used.insert(serve::shardForCell(config, width, 4));
    EXPECT_GT(used.size(), 1u);
}

TEST(Router, RoutedByteIdentity)
{
    FleetFixture fx(3);
    const MatrixQuery query = smallQuery();

    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    const MatrixResult fresh = runMatrixQuery(local, query);

    net::Client client(fx.port());
    const MatrixResult routed = client.matrix(query);
    EXPECT_EQ(routed.render(true), fresh.render(true));
    EXPECT_EQ(routed.render(false), fresh.render(false));
    EXPECT_TRUE(routed.quarantined.empty());

    // Speedup reduces config-A cells against the others; the 'A'
    // column typically lives on a different shard, so this crosses
    // shard boundaries inside one aggregate.
    MatrixQuery speedup = query;
    speedup.metric = "speedup";
    const MatrixResult freshSpeedup = runMatrixQuery(local, speedup);
    const MatrixResult routedSpeedup = client.matrix(speedup);
    EXPECT_EQ(routedSpeedup.render(true), freshSpeedup.render(true));
    EXPECT_EQ(routedSpeedup.render(false),
              freshSpeedup.render(false));

    // Warm ask: every cell now sits in some shard's resident cache.
    const MatrixResult again = client.matrix(query);
    EXPECT_EQ(again.render(true), fresh.render(true));
    EXPECT_EQ(again.summary.simulated, 0u);
}

TEST(Router, BrokenShardFailsTypedWhileOthersServe)
{
    FleetFixture fx(2);
    const MatrixQuery query = smallQuery();

    // Break the shard that owns the 'D' column; 'A' stays healthy
    // (or vice versa — whichever way the hash splits them).
    const unsigned brokenShard = serve::shardForCell('D', 4, 2);
    const unsigned healthyShard = serve::shardForCell('A', 4, 2);
    fx.fleet().shards[brokenShard]->broken.store(true);

    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    const MatrixResult fresh = runMatrixQuery(local, query);

    net::Client client(fx.port());
    const MatrixResult routed = client.matrix(query);

    if (brokenShard == healthyShard) {
        // Hash put both columns on one shard: everything degrades,
        // nothing crashes.
        EXPECT_FALSE(routed.quarantined.empty());
        return;
    }

    // The broken column is n/a with per-cell typed failures naming
    // the shard; the healthy column's bytes still match local.
    EXPECT_FALSE(routed.quarantined.empty());
    for (const auto &entry : routed.quarantined) {
        EXPECT_NE(entry.key.find("/D/"), std::string::npos);
        EXPECT_NE(entry.message.find("shard"), std::string::npos);
    }
    EXPECT_NE(routed.render(true).find("n/a"), std::string::npos);
    ASSERT_EQ(routed.values.size(), fresh.values.size());
    for (std::size_t c = 0; c < query.configs.size(); ++c) {
        for (std::size_t w = 0; w < query.widths.size(); ++w) {
            const std::size_t i = c * query.widths.size() + w;
            if (query.configs[c] == 'A') {
                EXPECT_TRUE(routed.valid[i]);
                EXPECT_EQ(routed.values[i], fresh.values[i]);
            } else {
                EXPECT_FALSE(routed.valid[i]);
            }
        }
    }
}

TEST(Router, RidesAShardWhosePortFileAppearsLate)
{
    // Shard 1's port file vanishes (as it would between generations
    // of a supervised shard) and reappears 300 ms later.  The fan-out
    // must ride that window through its retry policy.
    FleetFixture fx(2, {.retries = 20, .budgetMs = 20000});
    const MatrixQuery query = smallQuery();

    const std::string port_file = fx.fleet().shards[1]->portFile;
    const std::uint16_t real_port = support::readPortFile(port_file);
    ASSERT_NE(real_port, 0);
    std::remove(port_file.c_str());

    std::thread restorer([&]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        support::writeOneLineAtomic(port_file, real_port);
    });

    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    const MatrixResult fresh = runMatrixQuery(local, query);

    net::Client client(fx.port());
    const MatrixResult routed = client.matrix(query);
    restorer.join();

    EXPECT_EQ(routed.render(true), fresh.render(true));
    EXPECT_TRUE(routed.quarantined.empty());
}

TEST(Router, SurvivesShardGenerationChurn)
{
    // Three "generations" of shard 1: each round the shard dies (its
    // port file vanishes with it), a replacement comes up on a fresh
    // ephemeral port a beat later, and a query issued inside the
    // window still merges byte-identical to local.  This is the
    // in-process half of tools/fleet_chaos.sh.
    FleetFixture fx(2, {.retries = 20, .budgetMs = 20000});
    const MatrixQuery query = smallQuery();

    ExperimentDriver local(0, /*test_scale=*/true, /*jobs=*/1);
    const MatrixResult fresh = runMatrixQuery(local, query);

    net::Client client(fx.port());
    const std::string port_file = fx.fleet().shards[1]->portFile;

    std::unique_ptr<serve::Server> replacement;
    std::thread replacementThread;
    for (int generation = 0; generation < 3; ++generation) {
        // The shard "dies": its port file disappears; requests in
        // flight from here on must wait out the restart.
        std::remove(port_file.c_str());
        fx.fleet().shards[1]->generation.fetch_add(1);

        std::thread restorer([&]() {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(150));
            serve::ServerOptions opts;
            opts.port = 0;
            opts.testScale = true;
            opts.jobs = 2;
            auto next = std::make_unique<serve::Server>(opts);
            ASSERT_TRUE(next->valid());
            std::thread run_thread(
                [srv = next.get()]() { srv->run(); });
            if (replacement) {
                replacement->stop();
                replacementThread.join();
            }
            replacement = std::move(next);
            replacementThread = std::move(run_thread);
            support::writeOneLineAtomic(port_file,
                                        replacement->port());
        });

        const MatrixResult routed = client.matrix(query);
        restorer.join();
        EXPECT_EQ(routed.render(true), fresh.render(true))
            << "generation " << generation;
        EXPECT_TRUE(routed.quarantined.empty());
    }

    if (replacement) {
        replacement->stop();
        replacementThread.join();
    }
}

TEST(Router, HealthAggregatesPerShard)
{
    FleetFixture fx(3);

    net::Client client(fx.port());
    net::HealthInfo hi = client.health();
    ASSERT_EQ(hi.shards.size(), 3u);
    for (std::size_t i = 0; i < hi.shards.size(); ++i) {
        EXPECT_EQ(hi.shards[i].index, i);
        EXPECT_EQ(hi.shards[i].state, 0) << "shard " << i;
        EXPECT_NE(hi.shards[i].port, 0u);
    }

    // A broken slot reports broken without being probed; the others
    // stay serving.
    fx.fleet().shards[2]->broken.store(true);
    fx.fleet().shards[2]->restarts.store(7);
    hi = client.health();
    ASSERT_EQ(hi.shards.size(), 3u);
    EXPECT_EQ(hi.shards[2].state, 2);
    EXPECT_EQ(hi.shards[2].restarts, 7u);
    EXPECT_EQ(hi.shards[0].state, 0);
    EXPECT_EQ(hi.shards[1].state, 0);

    // A slot whose port file is gone (shard down, supervisor between
    // generations) reports restarting.
    std::remove(fx.fleet().shards[1]->portFile.c_str());
    hi = client.health();
    EXPECT_EQ(hi.shards[1].state, 1);
}

TEST(Router, InfoAggregatesAcrossShards)
{
    FleetFixture fx(2);
    net::Client client(fx.port());

    const MatrixQuery query = smallQuery();
    (void)client.matrix(query);

    const net::ServerInfo si = client.info();
    // Every unique cell simulated exactly once, somewhere.
    const std::uint64_t direct0 =
        fx.shard(0).infoSnapshot().simulated;
    const std::uint64_t direct1 =
        fx.shard(1).infoSnapshot().simulated;
    EXPECT_EQ(si.simulated, direct0 + direct1);
    EXPECT_GT(si.cachedCells, 0u);
    EXPECT_EQ(si.requestsServed, 1u);
}

} // anonymous namespace
} // namespace ddsc
