/**
 * @file
 * Unit tests for the two-delta stride address predictor.
 */

#include <gtest/gtest.h>

#include "addrpred/addrpred.hh"

namespace ddsc
{
namespace
{

constexpr std::uint64_t kPc = 0x10040;

/** Feed a sequence of addresses and return the final prediction. */
AddrPrediction
train(StrideAddressPredictor &pred, std::uint64_t pc,
      std::initializer_list<std::uint64_t> addrs)
{
    for (const std::uint64_t a : addrs)
        pred.update(pc, a);
    return pred.predict(pc);
}

TEST(StridePredictor, ColdEntryIsUnusable)
{
    StrideAddressPredictor pred;
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(StridePredictor, LearnsAConstantStride)
{
    StrideAddressPredictor pred;
    // 100,104,108,112,116: two-delta locks stride=4 at the third
    // update; confidence reaches 2 after two correct checks.
    const AddrPrediction p =
        train(pred, kPc, {100, 104, 108, 112, 116});
    EXPECT_TRUE(p.usable);
    EXPECT_EQ(p.addr, 120u);
}

TEST(StridePredictor, ConfidenceBuildupMatchesPaperRule)
{
    StrideAddressPredictor pred;
    // After 100,104,108 the stride is locked but the confidence is
    // still 0 (predictions at 104 and 108 were wrong).
    train(pred, kPc, {100, 104, 108});
    EXPECT_FALSE(pred.predict(kPc).usable);
    // 112 checks correct: confidence 1, still not above threshold.
    pred.update(kPc, 112);
    EXPECT_FALSE(pred.predict(kPc).usable);
    // 116 checks correct: confidence 2 > 1, usable.
    pred.update(kPc, 116);
    EXPECT_TRUE(pred.predict(kPc).usable);
}

TEST(StridePredictor, WrongPredictionCostsDouble)
{
    StrideAddressPredictor pred;
    train(pred, kPc, {100, 104, 108, 112, 116, 120});  // confidence 3
    // A break in the pattern decrements by 2 and breaks lastAddr.
    pred.update(kPc, 500);     // wrong: 3 -> 1
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(StridePredictor, ConstantAddressIsAStrideOfZero)
{
    StrideAddressPredictor pred;
    const AddrPrediction p = train(pred, kPc, {64, 64, 64});
    EXPECT_TRUE(p.usable);
    EXPECT_EQ(p.addr, 64u);
}

TEST(StridePredictor, TwoDeltaFiltersAOneOffJump)
{
    StrideAddressPredictor pred;
    // Steady stride 4, one jump, then steady stride 4 again: the
    // stride register must still hold 4 after the jump (the jump's
    // delta appears only once).
    train(pred, kPc, {100, 104, 108, 112});
    pred.update(kPc, 400);      // one-off
    pred.update(kPc, 404);
    pred.update(kPc, 408);
    pred.update(kPc, 412);
    const AddrPrediction p = pred.predict(kPc);
    EXPECT_TRUE(p.usable);
    EXPECT_EQ(p.addr, 416u);
}

TEST(StridePredictor, RandomWalkNeverBecomesUsable)
{
    StrideAddressPredictor pred;
    std::uint64_t addr = 0x1000;
    for (int i = 0; i < 200; ++i) {
        addr = addr * 2654435761u + 17;     // no repeated delta
        pred.update(kPc, addr & 0xffffff);
    }
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(StridePredictor, DistinctPcsHaveDistinctEntries)
{
    StrideAddressPredictor pred;
    train(pred, 0x10000, {100, 104, 108, 112, 116});
    EXPECT_FALSE(pred.predict(0x10004).usable);
}

TEST(StridePredictor, DirectMappedAliasing)
{
    StrideAddressPredictor pred(4);    // 16 entries
    const std::uint64_t a = 0x10000;
    const std::uint64_t b = a + 16 * 4;    // same index
    train(pred, a, {100, 104, 108, 112, 116});
    EXPECT_TRUE(pred.predict(a).usable);
    // The alias writes destroy a's entry.
    pred.update(b, 9999);
    EXPECT_FALSE(pred.predict(a).usable);
}

TEST(StridePredictor, ResetClearsEverything)
{
    StrideAddressPredictor pred;
    train(pred, kPc, {100, 104, 108, 112, 116});
    pred.reset();
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(StridePredictor, DefaultGeometryMatchesPaper)
{
    StrideAddressPredictor pred;
    EXPECT_EQ(pred.entries(), 4096u);
}

TEST(StridePredictor, ThresholdKnob)
{
    // With threshold 0, a single correct check suffices.
    StrideAddressPredictor eager(12, 0);
    train(eager, kPc, {100, 104, 108});
    eager.update(kPc, 112);     // first correct check: confidence 1
    EXPECT_TRUE(eager.predict(kPc).usable);
}

TEST(StridePredictor, NegativeStride)
{
    StrideAddressPredictor pred;
    const AddrPrediction p =
        train(pred, kPc, {1000, 992, 984, 976, 968});
    EXPECT_TRUE(p.usable);
    EXPECT_EQ(p.addr, 960u);
}

TEST(IdealPredictor, ReturnsTheOracle)
{
    IdealAddressPredictor pred;
    pred.setOracle(0xdead0);
    const AddrPrediction p = pred.predict(0x10000);
    EXPECT_TRUE(p.usable);
    EXPECT_EQ(p.addr, 0xdead0u);
}

TEST(LastValuePredictor, LearnsAConstantAddress)
{
    LastValueAddressPredictor pred;
    pred.update(kPc, 64);
    pred.update(kPc, 64);   // correct check: confidence 1
    EXPECT_FALSE(pred.predict(kPc).usable);
    pred.update(kPc, 64);   // confidence 2
    const AddrPrediction p = pred.predict(kPc);
    EXPECT_TRUE(p.usable);
    EXPECT_EQ(p.addr, 64u);
}

TEST(LastValuePredictor, CannotLearnAStride)
{
    LastValueAddressPredictor pred;
    for (std::uint64_t a = 100; a < 400; a += 4)
        pred.update(kPc, a);
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(LastValuePredictor, ResetForgets)
{
    LastValueAddressPredictor pred;
    for (int i = 0; i < 5; ++i)
        pred.update(kPc, 64);
    pred.reset();
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(ContextPredictor, LearnsAConstantStrideLikeTwoDelta)
{
    ContextAddressPredictor pred;
    std::uint64_t addr = 100;
    for (int i = 0; i < 20; ++i) {
        pred.update(kPc, addr);
        addr += 4;
    }
    const AddrPrediction p = pred.predict(kPc);
    EXPECT_TRUE(p.usable);
    EXPECT_EQ(p.addr, addr);    // last update was addr-4, next is addr
}

TEST(ContextPredictor, LearnsAlternatingStridesTwoDeltaCannot)
{
    // Deltas alternate +4, +12 (e.g. a field walk through an array of
    // structs): two-delta never sees the same delta twice in a row and
    // stays silent; order-2 context prediction nails it.
    StrideAddressPredictor two_delta;
    ContextAddressPredictor context;
    std::uint64_t addr = 0x1000;
    int context_hits = 0, two_delta_usable = 0;
    for (int i = 0; i < 400; ++i) {
        const AddrPrediction cp = context.predict(kPc);
        const AddrPrediction sp = two_delta.predict(kPc);
        addr += (i % 2 == 0) ? 4 : 12;
        if (cp.usable && cp.addr == addr)
            ++context_hits;
        if (sp.usable)
            ++two_delta_usable;
        context.update(kPc, addr);
        two_delta.update(kPc, addr);
    }
    EXPECT_GT(context_hits, 350);
    EXPECT_EQ(two_delta_usable, 0);
}

TEST(ContextPredictor, RandomWalkStaysSilent)
{
    ContextAddressPredictor pred;
    std::uint64_t addr = 0x4000;
    int usable = 0;
    for (int i = 0; i < 500; ++i) {
        addr = (addr * 2654435761u + 12345) & 0xffffff;
        if (pred.predict(kPc).usable)
            ++usable;
        pred.update(kPc, addr);
    }
    // A handful of accidental context hits are tolerable; sustained
    // confidence is not.
    EXPECT_LT(usable, 25);
}

TEST(ContextPredictor, ResetForgets)
{
    ContextAddressPredictor pred;
    std::uint64_t addr = 100;
    for (int i = 0; i < 20; ++i) {
        pred.update(kPc, addr);
        addr += 4;
    }
    pred.reset();
    EXPECT_FALSE(pred.predict(kPc).usable);
}

TEST(PredictorFactory, BuildsEachKind)
{
    for (const AddrPredKind kind :
         {AddrPredKind::TwoDelta, AddrPredKind::LastValue,
          AddrPredKind::Context}) {
        auto pred = makeAddressPredictor(kind);
        ASSERT_NE(pred, nullptr);
        EXPECT_FALSE(pred->predict(kPc).usable);
        EXPECT_FALSE(addrPredKindName(kind).empty());
    }
}

TEST(LoadClassNames, AllDefined)
{
    EXPECT_EQ(loadClassName(LoadClass::Ready), "ready");
    EXPECT_EQ(loadClassName(LoadClass::PredictedCorrect),
              "predicted-correctly");
    EXPECT_EQ(loadClassName(LoadClass::PredictedIncorrect),
              "predicted-incorrectly");
    EXPECT_EQ(loadClassName(LoadClass::NotPredicted), "not-predicted");
}

} // anonymous namespace
} // namespace ddsc
