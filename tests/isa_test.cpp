/**
 * @file
 * Unit tests for opcode traits and instruction formatting.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/opcodes.hh"

namespace ddsc
{
namespace
{

TEST(OpTraits, Classes)
{
    EXPECT_EQ(opTraits(Opcode::ADD).cls, OpClass::Arith);
    EXPECT_EQ(opTraits(Opcode::SUBCC).cls, OpClass::Arith);
    EXPECT_EQ(opTraits(Opcode::AND).cls, OpClass::Logic);
    EXPECT_EQ(opTraits(Opcode::SLL).cls, OpClass::Shift);
    EXPECT_EQ(opTraits(Opcode::MOV).cls, OpClass::Move);
    EXPECT_EQ(opTraits(Opcode::SETHI).cls, OpClass::Move);
    EXPECT_EQ(opTraits(Opcode::MUL).cls, OpClass::Mul);
    EXPECT_EQ(opTraits(Opcode::DIV).cls, OpClass::Div);
    EXPECT_EQ(opTraits(Opcode::LDW).cls, OpClass::Load);
    EXPECT_EQ(opTraits(Opcode::STB).cls, OpClass::Store);
    EXPECT_EQ(opTraits(Opcode::BCC).cls, OpClass::Branch);
    EXPECT_EQ(opTraits(Opcode::CALL).cls, OpClass::Call);
    EXPECT_EQ(opTraits(Opcode::CALLI).cls, OpClass::CallIndirect);
}

TEST(OpTraits, Mnemonics)
{
    EXPECT_EQ(opTraits(Opcode::ADD).mnemonic, "add");
    EXPECT_EQ(opTraits(Opcode::XORCC).mnemonic, "xorcc");
    EXPECT_EQ(opTraits(Opcode::LDB).mnemonic, "ldb");
}

TEST(OpTraits, ConditionCodes)
{
    EXPECT_TRUE(opTraits(Opcode::ADDCC).setsCC);
    EXPECT_TRUE(opTraits(Opcode::SUBCC).setsCC);
    EXPECT_TRUE(opTraits(Opcode::ANDCC).setsCC);
    EXPECT_FALSE(opTraits(Opcode::ADD).setsCC);
    EXPECT_TRUE(opTraits(Opcode::BCC).readsCC);
    EXPECT_FALSE(opTraits(Opcode::BA).readsCC);
}

TEST(OpLatency, MatchesPaperSection4)
{
    // "The latency of the different operations is 1 cycle with the
    // following exceptions: loads and multiplications require 2 cycles
    // and divides require 12 cycles."
    EXPECT_EQ(opLatency(Opcode::ADD), 1u);
    EXPECT_EQ(opLatency(Opcode::SLL), 1u);
    EXPECT_EQ(opLatency(Opcode::BCC), 1u);
    EXPECT_EQ(opLatency(Opcode::STW), 1u);
    EXPECT_EQ(opLatency(Opcode::LDW), 2u);
    EXPECT_EQ(opLatency(Opcode::LDB), 2u);
    EXPECT_EQ(opLatency(Opcode::MUL), 2u);
    EXPECT_EQ(opLatency(Opcode::DIV), 12u);
}

TEST(OpClassSignature, PaperLetters)
{
    EXPECT_EQ(opClassSignature(OpClass::Arith), "ar");
    EXPECT_EQ(opClassSignature(OpClass::Logic), "lg");
    EXPECT_EQ(opClassSignature(OpClass::Shift), "sh");
    EXPECT_EQ(opClassSignature(OpClass::Move), "mv");
    EXPECT_EQ(opClassSignature(OpClass::Load), "ld");
    EXPECT_EQ(opClassSignature(OpClass::Store), "st");
    EXPECT_EQ(opClassSignature(OpClass::Branch), "brc");
}

TEST(Collapsibility, MatchesPaperClasses)
{
    // Shift, arithmetic (not mul/div), logical, move, address
    // generation, condition-code generation for branches.
    EXPECT_TRUE(isCollapsibleClass(OpClass::Arith));
    EXPECT_TRUE(isCollapsibleClass(OpClass::Logic));
    EXPECT_TRUE(isCollapsibleClass(OpClass::Shift));
    EXPECT_TRUE(isCollapsibleClass(OpClass::Move));
    EXPECT_TRUE(isCollapsibleClass(OpClass::Load));
    EXPECT_TRUE(isCollapsibleClass(OpClass::Store));
    EXPECT_TRUE(isCollapsibleClass(OpClass::Branch));
    EXPECT_FALSE(isCollapsibleClass(OpClass::Mul));
    EXPECT_FALSE(isCollapsibleClass(OpClass::Div));
    EXPECT_FALSE(isCollapsibleClass(OpClass::Call));
    EXPECT_FALSE(isCollapsibleClass(OpClass::Ret));
    EXPECT_FALSE(isCollapsibleClass(OpClass::Jump));
}

TEST(WritesRegister, PerClass)
{
    EXPECT_TRUE(writesRegister(OpClass::Arith));
    EXPECT_TRUE(writesRegister(OpClass::Load));
    EXPECT_TRUE(writesRegister(OpClass::Call));   // link register
    EXPECT_TRUE(writesRegister(OpClass::CallIndirect));
    EXPECT_FALSE(writesRegister(OpClass::Store));
    EXPECT_FALSE(writesRegister(OpClass::Branch));
    EXPECT_FALSE(writesRegister(OpClass::Ret));
}

TEST(IsControl, PerClass)
{
    EXPECT_TRUE(isControl(OpClass::Branch));
    EXPECT_TRUE(isControl(OpClass::Jump));
    EXPECT_TRUE(isControl(OpClass::IndirectJump));
    EXPECT_TRUE(isControl(OpClass::Call));
    EXPECT_TRUE(isControl(OpClass::CallIndirect));
    EXPECT_TRUE(isControl(OpClass::Ret));
    EXPECT_FALSE(isControl(OpClass::Arith));
    EXPECT_FALSE(isControl(OpClass::Halt));
}

TEST(CondName, AllDefined)
{
    for (unsigned i = 0; i < kNumConds; ++i)
        EXPECT_FALSE(condName(static_cast<Cond>(i)).empty());
    EXPECT_EQ(condName(Cond::EQ), "eq");
    EXPECT_EQ(condName(Cond::GTU), "gtu");
}

TEST(Instruction, ToStringAlu)
{
    Instruction inst;
    inst.op = Opcode::ADD;
    inst.rd = 3;
    inst.rs1 = 1;
    inst.rs2 = 2;
    EXPECT_EQ(inst.toString(), "add r3, r1, r2");

    inst.useImm = true;
    inst.imm = -5;
    EXPECT_EQ(inst.toString(), "add r3, r1, -5");
}

TEST(Instruction, ToStringMemory)
{
    Instruction inst;
    inst.op = Opcode::LDW;
    inst.rd = 4;
    inst.rs1 = 2;
    inst.useImm = true;
    inst.imm = 8;
    EXPECT_EQ(inst.toString(), "ldw r4, [r2 + 8]");
}

TEST(Instruction, ToStringBranch)
{
    Instruction inst;
    inst.op = Opcode::BCC;
    inst.cond = Cond::NE;
    inst.target = 0x10010;
    EXPECT_EQ(inst.toString(), "bne 0x10010");
}

TEST(Program, PcMapping)
{
    EXPECT_EQ(Program::pcOf(0), kTextBase);
    EXPECT_EQ(Program::pcOf(5), kTextBase + 20);
    EXPECT_EQ(Program::indexOf(kTextBase + 20), 5u);
}

TEST(Program, Contains)
{
    Program prog;
    prog.text.resize(3);
    EXPECT_TRUE(prog.contains(kTextBase));
    EXPECT_TRUE(prog.contains(kTextBase + 8));
    EXPECT_FALSE(prog.contains(kTextBase + 12));
    EXPECT_FALSE(prog.contains(kTextBase + 2));    // misaligned
    EXPECT_FALSE(prog.contains(kTextBase - 4));
}

} // anonymous namespace
} // namespace ddsc
