/**
 * @file
 * Unit tests for the deterministic fault-injection framework
 * (support/fault.hh): spec parsing, nth-hit and tag semantics,
 * $DDSC_FAULT arming, and thread safety of the hit counter.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/fault.hh"

namespace ddsc::support
{
namespace
{

#ifndef DDSC_NO_FAULT_INJECTION

/** Disarm before and after every test so cases cannot leak state. */
class FaultTest : public testing::Test
{
  protected:
    void SetUp() override { faultArm(""); }
    void TearDown() override { faultArm(""); }
};

TEST_F(FaultTest, UnarmedNeverFires)
{
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(faultShouldFire("cell-throw", "li/D/16"));
    EXPECT_EQ(faultArmed(), "");
}

TEST_F(FaultTest, NthHitFiresExactlyOnce)
{
    faultArm("cell-throw:3");
    EXPECT_EQ(faultArmed(), "cell-throw:3");
    EXPECT_FALSE(faultShouldFire("cell-throw"));    // hit 1
    EXPECT_FALSE(faultShouldFire("cell-throw"));    // hit 2
    EXPECT_TRUE(faultShouldFire("cell-throw"));     // hit 3: fires
    // A transient fault: every later hit succeeds, so a retry works.
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(faultShouldFire("cell-throw"));
}

TEST_F(FaultTest, OtherPointsDoNotConsumeHits)
{
    faultArm("trace-short-read:2");
    EXPECT_FALSE(faultShouldFire("trace-short-write"));
    EXPECT_FALSE(faultShouldFire("cell-throw"));
    EXPECT_FALSE(faultShouldFire("trace-short-read"));  // hit 1
    EXPECT_FALSE(faultShouldFire("trace-short-write"));
    EXPECT_TRUE(faultShouldFire("trace-short-read"));   // hit 2
}

TEST_F(FaultTest, TagSpecIsPersistent)
{
    faultArm("cell-throw:li/D/16");
    // Fires on every matching hit: a retry keeps failing, which is
    // what drives a cell into quarantine.
    EXPECT_TRUE(faultShouldFire("cell-throw", "li/D/16"));
    EXPECT_TRUE(faultShouldFire("cell-throw", "li/D/16"));
    EXPECT_FALSE(faultShouldFire("cell-throw", "go/D/16"));
    EXPECT_FALSE(faultShouldFire("cell-throw", nullptr));
    EXPECT_TRUE(faultShouldFire("cell-throw", "li/D/16"));
}

TEST_F(FaultTest, RearmingResetsTheCounter)
{
    faultArm("cell-throw:2");
    EXPECT_FALSE(faultShouldFire("cell-throw"));
    faultArm("cell-throw:2");
    EXPECT_FALSE(faultShouldFire("cell-throw"));    // counter restarted
    EXPECT_TRUE(faultShouldFire("cell-throw"));
}

TEST_F(FaultTest, MalformedSpecsWarnAndDisarm)
{
    for (const char *bad : {"no-colon", "point:", ":5", "point:0", ""}) {
        faultArm(bad);
        EXPECT_EQ(faultArmed(), "") << "spec '" << bad << "'";
        EXPECT_FALSE(faultShouldFire("point"));
    }
}

// Note: the $DDSC_FAULT arming path is deliberately first-use-only, so
// it cannot be exercised from this process once any test has armed or
// disarmed explicitly.  The CLI smoke tests in tools/CMakeLists.txt
// (tools_fault_*) cover it end to end through the real environment.

TEST_F(FaultTest, NthCountingIsThreadSafe)
{
    // 4 threads hammer one point; exactly one of the 400 hits fires.
    faultArm("cell-throw:97");
    std::atomic<int> fired{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&fired]() {
            for (int i = 0; i < 100; ++i) {
                if (faultShouldFire("cell-throw"))
                    fired.fetch_add(1);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(fired.load(), 1);
}

#else // DDSC_NO_FAULT_INJECTION

TEST(Fault, CompiledOutHooksAreInert)
{
    faultArm("cell-throw:1");
    EXPECT_FALSE(faultShouldFire("cell-throw"));
    EXPECT_EQ(faultArmed(), "");
}

#endif // DDSC_NO_FAULT_INJECTION

} // anonymous namespace
} // namespace ddsc::support
