/**
 * @file
 * Unit tests for the functional emulator: per-opcode semantics,
 * condition codes, control flow, memory, and trace emission.
 */

#include <gtest/gtest.h>

#include "masm/assembler.hh"
#include "trace/trace_stats.hh"
#include "vm/memory.hh"
#include "vm/vm.hh"

namespace ddsc
{
namespace
{

/** Assemble, run to halt, return the VM for inspection. */
Vm
runProgram(const std::string &source, VectorTraceSource *trace = nullptr)
{
    static Program program;    // keep alive for the Vm reference
    program = assembleOrDie(source);
    Vm vm(program);
    if (trace) {
        VectorTraceSink sink(*trace);
        const auto result = vm.run(&sink, 1'000'000);
        EXPECT_TRUE(result.halted);
    } else {
        const auto result = vm.run(nullptr, 1'000'000);
        EXPECT_TRUE(result.halted);
    }
    return vm;
}

TEST(SparseMemory, ZeroInitialized)
{
    SparseMemory mem;
    EXPECT_EQ(mem.readByte(0x12345), 0);
    EXPECT_EQ(mem.readWord(0xdeadbeef), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(SparseMemory, ByteAndWordAccess)
{
    SparseMemory mem;
    mem.writeWord(0x1000, 0x11223344);
    EXPECT_EQ(mem.readWord(0x1000), 0x11223344u);
    EXPECT_EQ(mem.readByte(0x1000), 0x44);      // little endian
    EXPECT_EQ(mem.readByte(0x1003), 0x11);
    mem.writeByte(0x1001, 0xff);
    EXPECT_EQ(mem.readWord(0x1000), 0x1122ff44u);
}

TEST(SparseMemory, CrossPageWord)
{
    SparseMemory mem;
    const std::uint64_t addr = SparseMemory::kPageBytes - 2;
    mem.writeWord(addr, 0xaabbccdd);
    EXPECT_EQ(mem.readWord(addr), 0xaabbccddu);
    EXPECT_EQ(mem.residentPages(), 2u);
}

TEST(Vm, Arithmetic)
{
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, 10\n"
        "  mov r2, 3\n"
        "  add r3, r1, r2\n"
        "  sub r4, r1, r2\n"
        "  mul r5, r1, r2\n"
        "  div r6, r1, r2\n"
        "  halt\n");
    EXPECT_EQ(vm.reg(3), 13u);
    EXPECT_EQ(vm.reg(4), 7u);
    EXPECT_EQ(vm.reg(5), 30u);
    EXPECT_EQ(vm.reg(6), 3u);
}

TEST(Vm, LogicAndShifts)
{
    Vm vm = runProgram(
        "main:\n"
        "  li r1, 0xf0f0\n"
        "  li r2, 0x0ff0\n"
        "  and r3, r1, r2\n"
        "  or r4, r1, r2\n"
        "  xor r5, r1, r2\n"
        "  andn r6, r1, r2\n"
        "  sll r7, r2, 4\n"
        "  srl r8, r1, 4\n"
        "  mov r9, -16\n"
        "  sra r10, r9, 2\n"
        "  halt\n");
    EXPECT_EQ(vm.reg(3), 0x00f0u);
    EXPECT_EQ(vm.reg(4), 0xfff0u);
    EXPECT_EQ(vm.reg(5), 0xff00u);
    EXPECT_EQ(vm.reg(6), 0xf000u);
    EXPECT_EQ(vm.reg(7), 0xff00u);
    EXPECT_EQ(vm.reg(8), 0x0f0fu);
    EXPECT_EQ(vm.reg(10), static_cast<std::uint32_t>(-4));
}

TEST(Vm, R0IsAlwaysZero)
{
    Vm vm = runProgram(
        "main:\n"
        "  add r0, r0, 5\n"
        "  add r1, r0, 7\n"
        "  halt\n");
    EXPECT_EQ(vm.reg(0), 0u);
    EXPECT_EQ(vm.reg(1), 7u);
}

TEST(Vm, SethiShiftsBy12)
{
    Vm vm = runProgram("main:\n  sethi r1, 0x12345\n  halt\n");
    EXPECT_EQ(vm.reg(1), 0x12345000u);
}

TEST(Vm, ConditionCodesSigned)
{
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, 5\n"
        "  cmp r1, 5\n"
        "  halt\n");
    EXPECT_TRUE(vm.cc().z);
    EXPECT_FALSE(vm.cc().n);

    Vm vm2 = runProgram(
        "main:\n"
        "  mov r1, 3\n"
        "  cmp r1, 5\n"
        "  halt\n");
    EXPECT_TRUE(vm2.cc().n);
    EXPECT_TRUE(vm2.cc().c);    // unsigned borrow
    EXPECT_FALSE(vm2.cc().z);
}

TEST(Vm, SignedOverflowSetsV)
{
    Vm vm = runProgram(
        "main:\n"
        "  sethi r1, 0x7ffff\n"     // 0x7ffff000, near INT_MAX
        "  addcc r2, r1, r1\n"
        "  halt\n");
    EXPECT_TRUE(vm.cc().v);
}

TEST(Vm, SubccOverflowFlag)
{
    // INT_MIN - 1 overflows signed subtraction.
    Vm vm = runProgram(
        "main:\n"
        "  sethi r1, 0x80000\n"      // 0x80000000 = INT_MIN
        "  cmp r1, 1\n"
        "  halt\n");
    EXPECT_TRUE(vm.cc().v);
    EXPECT_FALSE(vm.cc().z);
}

TEST(Vm, AddccCarryFlag)
{
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, -1\n"             // 0xffffffff
        "  addcc r2, r1, 1\n"        // wraps to 0 with carry out
        "  halt\n");
    EXPECT_TRUE(vm.cc().c);
    EXPECT_TRUE(vm.cc().z);
    EXPECT_FALSE(vm.cc().v);         // unsigned wrap is not overflow
    EXPECT_EQ(vm.reg(2), 0u);
}

TEST(Vm, LogicCcClearsCarryAndOverflow)
{
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, -1\n"
        "  addcc r2, r1, 1\n"        // sets C
        "  orcc r3, r1, 0\n"         // logic cc clears C and V
        "  halt\n");
    EXPECT_FALSE(vm.cc().c);
    EXPECT_FALSE(vm.cc().v);
    EXPECT_TRUE(vm.cc().n);          // 0xffffffff is negative
}

TEST(Vm, ShiftAmountsAreMaskedToFiveBits)
{
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, 1\n"
        "  mov r2, 33\n"             // 33 & 31 == 1
        "  sll r3, r1, r2\n"
        "  srl r4, r3, 33\n"
        "  halt\n");
    EXPECT_EQ(vm.reg(3), 2u);
    EXPECT_EQ(vm.reg(4), 1u);
}

TEST(Vm, ArithmeticWrapsModulo32Bits)
{
    Vm vm = runProgram(
        "main:\n"
        "  li r1, 0xffffffff\n"
        "  add r2, r1, 2\n"
        "  li r3, 0x10000\n"
        "  mul r4, r3, r3\n"         // 2^32 wraps to 0
        "  halt\n");
    EXPECT_EQ(vm.reg(2), 1u);
    EXPECT_EQ(vm.reg(4), 0u);
}

TEST(Vm, BranchesTakeTheRightPath)
{
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, 2\n"
        "  cmp r1, 5\n"
        "  blt is_less\n"
        "  mov r2, 111\n"
        "  halt\n"
        "is_less:\n"
        "  mov r2, 222\n"
        "  halt\n");
    EXPECT_EQ(vm.reg(2), 222u);
}

TEST(Vm, UnsignedComparisonDiffersFromSigned)
{
    // -1 (0xffffffff) is less than 1 signed but greater unsigned.
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, -1\n"
        "  cmp r1, 1\n"
        "  bgtu unsigned_gt\n"
        "  mov r2, 0\n"
        "  halt\n"
        "unsigned_gt:\n"
        "  cmp r1, 1\n"
        "  blt signed_lt\n"
        "  mov r2, 1\n"
        "  halt\n"
        "signed_lt:\n"
        "  mov r2, 2\n"
        "  halt\n");
    EXPECT_EQ(vm.reg(2), 2u);
}

TEST(Vm, LoopComputesASum)
{
    // sum(1..10) = 55
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, 0\n"
        "  mov r2, 1\n"
        "loop:\n"
        "  add r1, r1, r2\n"
        "  add r2, r2, 1\n"
        "  cmp r2, 10\n"
        "  bleu loop\n"
        "  halt\n");
    EXPECT_EQ(vm.reg(1), 55u);
}

TEST(Vm, MemoryWordAndByte)
{
    Vm vm = runProgram(
        "main:\n"
        "  la r1, buf\n"
        "  li r2, 0xabcd\n"
        "  stw r2, [r1]\n"
        "  ldw r3, [r1 + 0]\n"
        "  ldb r4, [r1]\n"
        "  ldb r5, [r1 + 1]\n"
        "  stb r2, [r1 + 8]\n"
        "  ldw r6, [r1 + 8]\n"
        "  halt\n"
        ".data\n"
        "buf: .space 16\n");
    EXPECT_EQ(vm.reg(3), 0xabcdu);
    EXPECT_EQ(vm.reg(4), 0xcdu);
    EXPECT_EQ(vm.reg(5), 0xabu);
    EXPECT_EQ(vm.reg(6), 0xcdu);   // single byte stored
}

TEST(Vm, InitializedData)
{
    Vm vm = runProgram(
        "main:\n"
        "  la r1, table\n"
        "  ldw r2, [r1]\n"
        "  ldw r3, [r1 + 4]\n"
        "  halt\n"
        ".data\n"
        "table: .word 17, 42\n");
    EXPECT_EQ(vm.reg(2), 17u);
    EXPECT_EQ(vm.reg(3), 42u);
}

TEST(Vm, CallAndRet)
{
    Vm vm = runProgram(
        "main:\n"
        "  mov r1, 5\n"
        "  call double_it\n"
        "  add r3, r2, 1\n"
        "  halt\n"
        "double_it:\n"
        "  add r2, r1, r1\n"
        "  ret\n");
    EXPECT_EQ(vm.reg(2), 10u);
    EXPECT_EQ(vm.reg(3), 11u);
}

TEST(Vm, IndirectCallThroughFunctionPointer)
{
    Vm vm = runProgram(
        "main:\n"
        "  la r1, fnptr\n"
        "  ldw r2, [r1]\n"
        "  mov r3, 21\n"
        "  calli [r2]\n"
        "  add r5, r4, 1\n"
        "  halt\n"
        "double_it:\n"
        "  add r4, r3, r3\n"
        "  ret\n"
        ".data\n"
        "fnptr: .word double_it\n");
    EXPECT_EQ(vm.reg(4), 42u);
    EXPECT_EQ(vm.reg(5), 43u);
}

TEST(Vm, IndirectJumpThroughTable)
{
    Vm vm = runProgram(
        "main:\n"
        "  la r1, jumptab\n"
        "  ldw r2, [r1 + 4]\n"     // second entry
        "  jmpi [r2]\n"
        "  halt\n"
        "case0:\n"
        "  mov r3, 100\n"
        "  halt\n"
        "case1:\n"
        "  mov r3, 200\n"
        "  halt\n"
        ".data\n"
        "jumptab: .word case0, case1\n");
    EXPECT_EQ(vm.reg(3), 200u);
}

TEST(Vm, StackConvention)
{
    Vm vm = runProgram(
        "main:\n"
        "  sub sp, sp, 8\n"
        "  mov r1, 77\n"
        "  stw r1, [sp]\n"
        "  mov r1, 0\n"
        "  ldw r2, [sp]\n"
        "  add sp, sp, 8\n"
        "  halt\n");
    EXPECT_EQ(vm.reg(2), 77u);
    EXPECT_EQ(vm.reg(kRegSp), kStackTop);
}

TEST(Vm, TraceExcludesNopsAndHalt)
{
    VectorTraceSource trace;
    runProgram(
        "main:\n"
        "  nop\n"
        "  add r1, r2, r3\n"
        "  nop\n"
        "  halt\n", &trace);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.records()[0].op, Opcode::ADD);
}

TEST(Vm, TraceRecordsEffectiveAddresses)
{
    VectorTraceSource trace;
    runProgram(
        "main:\n"
        "  la r1, buf\n"
        "  stw r0, [r1 + 4]\n"
        "  ldw r2, [r1 + 4]\n"
        "  halt\n"
        ".data\n"
        "buf: .space 8\n", &trace);
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.records()[2].ea, kDataBase + 4);
    EXPECT_EQ(trace.records()[3].ea, kDataBase + 4);
}

TEST(Vm, TraceRecordsBranchOutcomes)
{
    VectorTraceSource trace;
    runProgram(
        "main:\n"
        "  mov r1, 1\n"
        "  cmp r1, 1\n"
        "  beq yes\n"
        "  halt\n"
        "yes:\n"
        "  cmp r1, 2\n"
        "  beq no\n"
        "  halt\n"
        "no:\n"
        "  halt\n", &trace);
    // mov, cmp, beq(taken), cmp, beq(not taken)
    ASSERT_EQ(trace.size(), 5u);
    EXPECT_TRUE(trace.records()[2].taken);
    EXPECT_FALSE(trace.records()[4].taken);
    EXPECT_EQ(trace.records()[2].target, trace.records()[3].pc);
}

TEST(Vm, RunRespectsInstructionLimit)
{
    Program program = assembleOrDie(
        "main:\n"
        "loop:\n"
        "  add r1, r1, 1\n"
        "  ba loop\n");
    Vm vm(program);
    const auto result = vm.run(nullptr, 100);
    EXPECT_FALSE(result.halted);
    EXPECT_EQ(result.instructions, 100u);
}

TEST(Vm, ResetRestoresInitialState)
{
    Program program = assembleOrDie(
        "main:\n"
        "  mov r1, 9\n"
        "  la r2, buf\n"
        "  stw r1, [r2]\n"
        "  halt\n"
        ".data\n"
        "buf: .space 4\n");
    Vm vm(program);
    ASSERT_TRUE(vm.run(nullptr, 1000).halted);
    EXPECT_EQ(vm.reg(1), 9u);
    vm.reset();
    EXPECT_EQ(vm.reg(1), 0u);
    EXPECT_EQ(vm.loadWord(kDataBase), 0u);
    EXPECT_EQ(vm.pc(), program.entry);
    // And it runs again identically.
    ASSERT_TRUE(vm.run(nullptr, 1000).halted);
    EXPECT_EQ(vm.reg(1), 9u);
}

TEST(Vm, DeterministicTraces)
{
    Program program = assembleOrDie(
        "main:\n"
        "  mov r1, 0\n"
        "loop:\n"
        "  add r1, r1, 1\n"
        "  cmp r1, 50\n"
        "  blt loop\n"
        "  halt\n");
    VectorTraceSource a, b;
    {
        Vm vm(program);
        VectorTraceSink sink(a);
        vm.run(&sink, 100000);
    }
    {
        Vm vm(program);
        VectorTraceSink sink(b);
        vm.run(&sink, 100000);
    }
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.records()[i].pc, b.records()[i].pc);
}

} // anonymous namespace
} // namespace ddsc
