/**
 * @file
 * Unit tests for trace records, sources, file I/O (including the v3
 * CRC footer, v2 legacy compatibility, and corruption diagnostics),
 * statistics, and the synthetic generator.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "support/fault.hh"
#include "test_helpers.hh"
#include "trace/record.hh"
#include "trace/source.hh"
#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"

namespace ddsc
{
namespace
{

using test::Rec;
using test::alu;
using test::aluImm;
using test::branch;
using test::load;
using test::store;

TEST(Record, DestRegOfAlu)
{
    const TraceRecord rec = alu(Opcode::ADD, 3, 1, 2);
    EXPECT_EQ(rec.destReg(), 3);
}

TEST(Record, WritesToR0AreDiscarded)
{
    const TraceRecord rec = alu(Opcode::SUBCC, 0, 1, 2);   // cmp
    EXPECT_EQ(rec.destReg(), -1);
}

TEST(Record, StoreHasNoDest)
{
    const TraceRecord rec = store(5, 2, 0, 0x1000);
    EXPECT_EQ(rec.destReg(), -1);
}

TEST(Record, CallWritesLink)
{
    TraceRecord rec = Rec(Opcode::CALL);
    EXPECT_EQ(rec.destReg(), kRegLink);
}

TEST(Record, DataSourcesOfAlu)
{
    const TraceRecord rec = alu(Opcode::ADD, 3, 1, 2);
    const auto srcs = rec.dataSources();
    EXPECT_EQ(srcs[0], 1);
    EXPECT_EQ(srcs[1], 2);
}

TEST(Record, ImmediateSecondSourceIsNotARegister)
{
    const TraceRecord rec = aluImm(Opcode::ADD, 3, 1, 42);
    const auto srcs = rec.dataSources();
    EXPECT_EQ(srcs[0], 1);
    EXPECT_EQ(srcs[1], -1);
}

TEST(Record, ReadsOfR0AreNotDependences)
{
    const TraceRecord rec = alu(Opcode::ADD, 3, 0, 2);
    const auto srcs = rec.dataSources();
    EXPECT_EQ(srcs[0], 2);
    EXPECT_EQ(srcs[1], -1);
}

TEST(Record, LoadSeparatesAddressSources)
{
    const TraceRecord rec = Rec(Opcode::LDW).rd(4).rs1(2).rs2(3)
        .ea(0x1000);
    const auto addr = rec.addressSources();
    EXPECT_EQ(addr[0], 2);
    EXPECT_EQ(addr[1], 3);
    const auto data = rec.dataSources();
    EXPECT_EQ(data[0], -1);
}

TEST(Record, StoreDataIsANonAddressSource)
{
    const TraceRecord rec = store(5, 2, 8, 0x1000);
    const auto addr = rec.addressSources();
    EXPECT_EQ(addr[0], 2);
    EXPECT_EQ(addr[1], -1);
    const auto data = rec.dataSources();
    EXPECT_EQ(data[0], 5);
}

TEST(Record, RetReadsLink)
{
    TraceRecord rec = Rec(Opcode::RET);
    const auto data = rec.dataSources();
    EXPECT_EQ(data[0], kRegLink);
}

TEST(Record, MemSize)
{
    EXPECT_EQ(load(1, 2, 0, 0).memSize(), 4u);
    TraceRecord byte_load = Rec(Opcode::LDB).rd(1).rs1(2).imm(0);
    EXPECT_EQ(byte_load.memSize(), 1u);
}

TEST(Record, NonZeroOperandCount)
{
    EXPECT_EQ(alu(Opcode::ADD, 3, 1, 2).nonZeroOperandCount(), 2u);
    EXPECT_EQ(aluImm(Opcode::ADD, 3, 1, 5).nonZeroOperandCount(), 2u);
    EXPECT_EQ(aluImm(Opcode::ADD, 3, 1, 0).nonZeroOperandCount(), 1u);
    EXPECT_EQ(alu(Opcode::ADD, 3, 0, 2).nonZeroOperandCount(), 1u);
    // Store: base + offset + data.
    EXPECT_EQ(store(5, 2, 4, 0).nonZeroOperandCount(), 3u);
    EXPECT_EQ(store(0, 2, 0, 0).nonZeroOperandCount(), 1u);
    // Branch: the cc arc is not a value slot.
    EXPECT_EQ(branch(Cond::EQ, true).nonZeroOperandCount(), 0u);
}

TEST(Record, HasZeroOperand)
{
    EXPECT_FALSE(alu(Opcode::ADD, 3, 1, 2).hasZeroOperand());
    EXPECT_TRUE(aluImm(Opcode::ADD, 3, 1, 0).hasZeroOperand());
    EXPECT_TRUE(store(0, 2, 4, 0).hasZeroOperand());
}

TEST(VectorSource, IterationAndReset)
{
    VectorTraceSource src({alu(Opcode::ADD, 1, 2, 3),
                           alu(Opcode::SUB, 4, 5, 6)});
    TraceRecord rec;
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.op, Opcode::ADD);
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.op, Opcode::SUB);
    EXPECT_FALSE(src.next(rec));
    src.reset();
    ASSERT_TRUE(src.next(rec));
    EXPECT_EQ(rec.op, Opcode::ADD);
}

TEST(BoundedSource, TruncatesAndResets)
{
    VectorTraceSource inner({alu(Opcode::ADD, 1, 2, 3),
                             alu(Opcode::SUB, 4, 5, 6),
                             alu(Opcode::XOR, 7, 8, 9)});
    BoundedTraceSource bounded(inner, 2);
    TraceRecord rec;
    EXPECT_TRUE(bounded.next(rec));
    EXPECT_TRUE(bounded.next(rec));
    EXPECT_FALSE(bounded.next(rec));
    bounded.reset();
    EXPECT_TRUE(bounded.next(rec));
    EXPECT_EQ(rec.op, Opcode::ADD);
}

TEST(TraceFile, RoundTrip)
{
    const std::string path = testing::TempDir() + "/ddsc_roundtrip.trc";
    std::vector<TraceRecord> records = {
        load(4, 2, 8, 0x40001000, 0x10004),
        branch(Cond::NE, true, 0x10008),
        aluImm(Opcode::SUBCC, 0, 7, -3, 0x1000c),
    };
    {
        TraceFileWriter writer(path);
        for (const auto &rec : records)
            writer.emit(rec);
    }
    TraceFileSource reader(path);
    EXPECT_EQ(reader.count(), records.size());
    TraceRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.op, Opcode::LDW);
    EXPECT_EQ(rec.ea, 0x40001000u);
    EXPECT_EQ(rec.pc, 0x10004u);
    EXPECT_EQ(rec.rd, 4);
    EXPECT_EQ(rec.rs1, 2);
    EXPECT_TRUE(rec.useImm);
    EXPECT_EQ(rec.imm, 8);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.op, Opcode::BCC);
    EXPECT_EQ(rec.cond, Cond::NE);
    EXPECT_TRUE(rec.taken);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.imm, -3);
    EXPECT_FALSE(reader.next(rec));
    reader.reset();
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.op, Opcode::LDW);
    std::remove(path.c_str());
}

/** Read a whole file into a byte string. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/** Overwrite @p path with @p bytes. */
void
spew(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Write a small valid v3 trace file and return its path.  (v3 is
 *  requested explicitly: the writer's default is the blocked v4
 *  layout, and these tests pin v3's flat byte geometry.) */
std::string
writeSampleTrace(const std::string &name, std::size_t records = 5)
{
    const std::string path = testing::TempDir() + "/" + name;
    TraceFileWriter writer(path, 3);
    for (std::size_t i = 0; i < records; ++i) {
        writer.emit(aluImm(Opcode::ADD, 3, 1,
                           static_cast<std::int32_t>(i),
                           0x10000 + 4 * i));
    }
    writer.close();
    return path;
}

constexpr std::size_t kTrcHeaderBytes = 24;
constexpr std::size_t kTrcRecordBytes = 40;
constexpr std::size_t kTrcFooterBytes = 16;

TEST(TraceFile, WriterProducesV3WithFooter)
{
    const std::string path = writeSampleTrace("v3_layout.trc", 3);
    const std::string bytes = slurp(path);
    EXPECT_EQ(bytes.size(),
              kTrcHeaderBytes + 3 * kTrcRecordBytes + kTrcFooterBytes);
    EXPECT_EQ(bytes.substr(0, 8), "DDSCTRC1");
    EXPECT_EQ(bytes.substr(bytes.size() - kTrcFooterBytes, 8),
              "DDSCEOF1");
    TraceFileSource reader(path);
    EXPECT_EQ(reader.version(), 3u);
    EXPECT_EQ(reader.count(), 3u);
    std::remove(path.c_str());
}

TEST(TraceFile, V2LegacyStillReadable)
{
    // A v2 file is a v3 file minus the footer, with version = 2 in the
    // header; old traces on disk must keep loading.
    const std::string path = writeSampleTrace("v2_compat.trc", 4);
    std::string bytes = slurp(path);
    bytes.resize(bytes.size() - kTrcFooterBytes);
    bytes[8] = 2;   // little-endian version field
    spew(path, bytes);

    TraceFileSource reader(path);
    EXPECT_EQ(reader.version(), 2u);
    EXPECT_EQ(reader.count(), 4u);
    TraceRecord rec;
    for (unsigned i = 0; i < 4; ++i) {
        ASSERT_TRUE(reader.next(rec));
        EXPECT_EQ(rec.imm, static_cast<std::int32_t>(i));
    }
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, UnknownVersionNamesRebuildTool)
{
    const std::string path = writeSampleTrace("v9_reject.trc");
    std::string bytes = slurp(path);
    bytes[8] = 9;
    spew(path, bytes);
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1),
                "version 9.*rebuild the trace with ddsc-asm");
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, TruncationNamesByteOffsetAndRecord)
{
    // Cut the file mid-record 2: the diagnostic must carry the actual
    // end offset, the promised byte count, and the record index.
    const std::string path = writeSampleTrace("trunc_diag.trc", 5);
    std::string bytes = slurp(path);
    bytes.resize(kTrcHeaderBytes + 2 * kTrcRecordBytes + 7);
    spew(path, bytes);
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1),
                "promises 5 records \\(240 bytes\\) but the file ends "
                "at byte offset 111, inside record 2");
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, CountSmallerThanFileIsRejected)
{
    const std::string path = writeSampleTrace("garbage_tail.trc", 2);
    std::string bytes = slurp(path);
    bytes += "extra";
    spew(path, bytes);
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1),
                "trailing garbage");
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, BitFlipFailsFooterCrc)
{
    const std::string path = writeSampleTrace("bitflip.trc", 5);
    std::string bytes = slurp(path);
    bytes[kTrcHeaderBytes + kTrcRecordBytes + 3] ^=
        static_cast<char>(0x40);
    spew(path, bytes);
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1), "corrupt.*CRC32");
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, NotATraceFile)
{
    const std::string path = testing::TempDir() + "/not_a_trace.trc";
    spew(path, "this is sixteen+ bytes of not-a-trace-file content");
    EXPECT_EXIT({ TraceFileSource reader(path); },
                testing::ExitedWithCode(1), "not a ddsc trace file");
    std::remove(path.c_str());
}

#ifndef DDSC_NO_FAULT_INJECTION
TEST(TraceFileDeathTest, InjectedShortWriteDiagnosesOffset)
{
    const std::string path = testing::TempDir() + "/short_write.trc";
    EXPECT_EXIT(
        {
            support::faultArm("trace-short-write:3");
            TraceFileWriter writer(path, 3);
            for (unsigned i = 0; i < 5; ++i)
                writer.emit(alu(Opcode::ADD, 1, 2, 3));
        },
        testing::ExitedWithCode(1),
        "short write.*record 2 \\(byte offset 104\\)");
    support::faultArm("");
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, InjectedShortReadDiagnosesOffset)
{
    const std::string path = writeSampleTrace("short_read.trc", 5);
    EXPECT_EXIT(
        {
            support::faultArm("trace-short-read:4");
            TraceFileSource reader(path);
            TraceRecord rec;
            while (reader.next(rec)) {
            }
        },
        testing::ExitedWithCode(1),
        "short read at byte offset 144 \\(record 3 of 5\\)");
    support::faultArm("");
    std::remove(path.c_str());
}
#endif // DDSC_NO_FAULT_INJECTION

TEST(Digest, SensitiveToEveryArchitecturalField)
{
    const std::vector<TraceRecord> base = {
        load(4, 2, 8, 0x40001000, 0x10004),
        branch(Cond::NE, true, 0x10008),
    };
    const std::uint64_t digest = digestRecords(base);
    EXPECT_EQ(digestRecords(base), digest);    // deterministic

    auto mutated = [&base](auto &&edit) {
        std::vector<TraceRecord> copy = base;
        edit(copy);
        return digestRecords(copy);
    };
    EXPECT_NE(mutated([](auto &r) { r[0].pc ^= 4; }), digest);
    EXPECT_NE(mutated([](auto &r) { r[0].ea ^= 4; }), digest);
    EXPECT_NE(mutated([](auto &r) { r[0].memValue ^= 1; }), digest);
    EXPECT_NE(mutated([](auto &r) { r[0].imm += 1; }), digest);
    EXPECT_NE(mutated([](auto &r) { r[0].rd ^= 1; }), digest);
    EXPECT_NE(mutated([](auto &r) { r[1].taken = false; }), digest);
    EXPECT_NE(mutated([](auto &r) { r[1].target ^= 8; }), digest);
    EXPECT_NE(mutated([](auto &r) { r.pop_back(); }), digest);
}

TEST(Digest, VectorSourceExposesIt)
{
    VectorTraceSource src({alu(Opcode::ADD, 1, 2, 3)});
    EXPECT_EQ(src.digest(), digestRecords(src.records()));
}

TEST(TraceStats, InstructionMix)
{
    TraceStats stats;
    stats.account(alu(Opcode::ADD, 1, 2, 3));
    stats.account(load(4, 2, 0, 0x1000));
    stats.account(aluImm(Opcode::SUBCC, 0, 1, 0));
    stats.account(branch(Cond::EQ, false));
    EXPECT_EQ(stats.instructions(), 4u);
    EXPECT_EQ(stats.countOf(OpClass::Arith), 2u);
    EXPECT_EQ(stats.countOf(OpClass::Load), 1u);
    EXPECT_NEAR(stats.pctCondBranches(), 25.0, 1e-9);
    EXPECT_NEAR(stats.pctLoads(), 25.0, 1e-9);
}

TEST(TraceStats, BasicBlockSizes)
{
    TraceStats stats;
    // Two blocks: 3 instructions ending in a branch, then 1 + branch.
    stats.account(alu(Opcode::ADD, 1, 2, 3));
    stats.account(alu(Opcode::ADD, 1, 2, 3));
    stats.account(branch(Cond::EQ, true));
    stats.account(alu(Opcode::ADD, 1, 2, 3));
    stats.account(branch(Cond::EQ, false));
    EXPECT_EQ(stats.basicBlockSizes().samples(), 2u);
    EXPECT_EQ(stats.basicBlockSizes().count(3), 1u);
    EXPECT_EQ(stats.basicBlockSizes().count(2), 1u);
}

TEST(Synthetic, DeterministicForSameSeed)
{
    SyntheticTraceConfig config;
    config.instructions = 500;
    config.seed = 33;
    VectorTraceSource a = generateSynthetic(config);
    VectorTraceSource b = generateSynthetic(config);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.records()[i].pc, b.records()[i].pc);
        EXPECT_EQ(a.records()[i].op, b.records()[i].op);
        EXPECT_EQ(a.records()[i].ea, b.records()[i].ea);
        EXPECT_EQ(a.records()[i].taken, b.records()[i].taken);
    }
}

TEST(Synthetic, ProducesRequestedLength)
{
    SyntheticTraceConfig config;
    config.instructions = 1234;
    EXPECT_EQ(generateSynthetic(config).size(), 1234u);
}

TEST(Synthetic, ContainsTheRequestedClasses)
{
    SyntheticTraceConfig config;
    config.instructions = 20000;
    VectorTraceSource trace = generateSynthetic(config);
    TraceStats stats;
    stats.accountAll(trace);
    EXPECT_GT(stats.countOf(OpClass::Load), 0u);
    EXPECT_GT(stats.countOf(OpClass::Store), 0u);
    EXPECT_GT(stats.countOf(OpClass::Branch), 0u);
    EXPECT_GT(stats.countOf(OpClass::Shift), 0u);
    EXPECT_GT(stats.countOf(OpClass::Arith), 0u);
}

TEST(Synthetic, BranchesFollowCompares)
{
    SyntheticTraceConfig config;
    config.instructions = 5000;
    VectorTraceSource trace = generateSynthetic(config);
    const auto &records = trace.records();
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].isCondBranch() && i > 0) {
            EXPECT_TRUE(records[i - 1].setsCC());
        }
    }
}

} // anonymous namespace
} // namespace ddsc
