/**
 * @file
 * ddsc-graph: dump the dynamic dependence graph of a (small) program
 * as Graphviz DOT, with collapsible arcs highlighted -- the tool
 * equivalent of the paper's Figure 1.
 *
 * Usage:
 *   ddsc-graph prog.s [--limit N] > graph.dot
 *   dot -Tsvg graph.dot -o graph.svg
 *
 * Nodes are dynamic instructions (label: disassembly); solid edges are
 * value dependences, dashed edges address-generation dependences,
 * dotted edges cc dependences.  Green edges are collapsible under the
 * paper's rules; red edges are not.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collapse/rules.hh"
#include "masm/assembler.hh"
#include "support/logging.hh"
#include "support/version.hh"
#include "vm/vm.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: ddsc-graph prog.s [--limit N] [--version]\n");
    std::exit(2);
}

const char *
edgeColor(const TraceRecord &producer, const TraceRecord &consumer,
          bool address_arc, bool cc_arc)
{
    const bool collapsible =
        CollapseRules::producerEligible(producer) &&
        CollapseRules::consumerEligible(consumer, address_arc, cc_arc);
    return collapsible ? "forestgreen" : "firebrick";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string input;
    std::uint64_t limit = 200;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--limit") {
            if (i + 1 >= argc)
                usage();
            limit = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--version") {
            support::version::print("ddsc-graph");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else if (input.empty()) {
            input = arg;
        } else {
            usage();
        }
    }
    if (input.empty())
        usage();

    std::ifstream in(input, std::ios::binary);
    if (!in)
        ddsc_fatal("cannot open '%s'", input.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const Program program = assembleOrDie(buffer.str());

    VectorTraceSource trace;
    VectorTraceSink sink(trace);
    Vm vm(program);
    vm.run(&sink, limit);

    const auto &records = trace.records();
    std::printf("digraph ddsc {\n"
                "  rankdir=TB;\n"
                "  node [shape=box, fontname=\"monospace\", "
                "fontsize=10];\n");

    // Node labels from the static program's disassembly.
    for (std::size_t i = 0; i < records.size(); ++i) {
        const std::size_t idx = Program::indexOf(records[i].pc);
        std::printf("  n%zu [label=\"%zu: %s\"];\n", i, i,
                    program.text[idx].toString().c_str());
    }

    // Edges: the same derivation the scheduler uses.
    std::uint64_t last_writer[kNumRegs] = {};
    std::uint64_t last_cc = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &rec = records[i];
        auto edge = [&](std::uint64_t from, const char *style,
                        bool address_arc, bool cc_arc) {
            if (from == 0)
                return;
            std::printf("  n%llu -> n%zu [style=%s, color=%s];\n",
                        static_cast<unsigned long long>(from - 1), i,
                        style,
                        edgeColor(records[from - 1], rec, address_arc,
                                  cc_arc));
        };
        for (const int reg : rec.dataSources()) {
            if (reg >= 0)
                edge(last_writer[reg], "solid", false, false);
        }
        for (const int reg : rec.addressSources()) {
            if (reg >= 0)
                edge(last_writer[reg], "dashed", true, false);
        }
        if (rec.readsCC())
            edge(last_cc, "dotted", false, true);
        if (const int dest = rec.destReg(); dest >= 0)
            last_writer[dest] = i + 1;
        if (rec.setsCC())
            last_cc = i + 1;
    }
    std::printf("}\n");
    return 0;
}
