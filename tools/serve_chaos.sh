#!/usr/bin/env bash
# Chaos soak of the crash-only serving stack, driven by ctest and CI:
# one supervised ddsc-served over one durable store, clients with
# retries, and a hostile operator.
#
#   1. cold query     retrying client output is byte-identical to
#                     ddsc-matrix
#   2. SIGKILL x3     kill -9 the *serving* child between and during
#                     queries; the supervisor restarts it (fresh
#                     generation, fresh ephemeral port), the client
#                     re-reads the port file and retries, and every
#                     answer stays byte-identical; the store's record
#                     count never decreases across generations
#   3. armed faults   restart the soak with DDSC_FAULT set: every
#                     generation re-arms the fault (transient net
#                     disconnect, then a transient cell throw over a
#                     cleared store), and retries still converge to the
#                     oracle bytes
#   4. drain          SIGTERM to the supervisor: the serving child
#                     drains, nothing restarts, exit 0
#
# The in-process half of this story (watchdog stall -> typed Stalled,
# self-healing quarantine) lives in tests/serve_chaos_test.cpp.
#
# usage: serve_chaos.sh <ddsc-served> <ddsc-client> <ddsc-matrix>
set -euo pipefail

SERVED=$1
CLIENT=$2
MATRIX=$3

export DDSC_TRACE_LIMIT=20000
QUERY=(--set pc --configs AD --widths 4 --metric ipc --csv)
RETRY=(--retries 20 --retry-budget-ms 60000)

work=$(mktemp -d)
SUPER=
cleanup() {
    [ -n "$SUPER" ] && kill "$SUPER" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

start_supervised() { # args: extra served flags...
    : > "$work/port"
    : > "$work/pid"
    "$SERVED" --supervise --port 0 --port-file "$work/port" \
        --pid-file "$work/pid" --jobs 2 --cache-dir "$work/cache" \
        --max-restarts 50 --watchdog-budget-ms 10000 "$@" \
        2>> "$work/served.log" &
    SUPER=$!
    wait_ready
}

wait_ready() { # the port file is the generation's ready signal
    for _ in $(seq 1 150); do
        [ -s "$work/port" ] && return 0
        kill -0 "$SUPER" 2>/dev/null ||
            { echo "supervisor died while starting" >&2; return 1; }
        sleep 0.1
    done
    echo "server did not write its port file" >&2
    return 1
}

stop_supervised() { # SIGTERM: drain the child, do not restart, exit 0
    kill -TERM "$SUPER"
    local rc=0
    wait "$SUPER" || rc=$?
    SUPER=
    [ "$rc" -eq 0 ] ||
        { echo "supervisor exited $rc on SIGTERM" >&2; return 1; }
}

kill_serving_child() { # -9, the crash the stack promises to survive
    local victim
    victim=$(cat "$work/pid")
    [ -n "$victim" ] || { echo "empty pid file" >&2; return 1; }
    : > "$work/port"    # so wait_ready sees the *next* generation
    kill -KILL "$victim"
}

store_records() {
    "$CLIENT" --port-file "$work/port" "${RETRY[@]}" --health |
        awk -F: '/store records/ { gsub(/ /, "", $2); print $2 }'
}

query_matches_oracle() { # args: label
    "$CLIENT" --port-file "$work/port" "${RETRY[@]}" "${QUERY[@]}" \
        > "$work/$1.csv" 2> "$work/$1.log"
    cmp "$work/oracle.csv" "$work/$1.csv" ||
        { echo "$1: bytes diverged from the oracle" >&2; return 1; }
}

"$MATRIX" "${QUERY[@]}" > "$work/oracle.csv" 2> /dev/null

# --- 1 + 2: SIGKILL soak over one store --------------------------------
start_supervised

query_matches_oracle cold
records=$(store_records)
[ "$records" -ge 1 ] || { echo "cold run stored nothing" >&2; exit 1; }

for round in 1 2 3; do
    kill_serving_child
    # Round 2 races the kill against an in-flight query instead of
    # politely waiting for the restart first.
    if [ "$round" -ne 2 ]; then
        wait_ready
    fi
    query_matches_oracle "kill$round"
    next=$(store_records)
    [ "$next" -ge "$records" ] ||
        { echo "store shrank: $records -> $next" >&2; exit 1; }
    records=$next
done

gens=$(grep -c 'killed by signal 9' "$work/served.log") || true
[ "$gens" -ge 3 ] ||
    { echo "expected >=3 logged SIGKILL deaths, saw $gens" >&2; exit 1; }

stop_supervised
grep -q 'drained cleanly' "$work/served.log" ||
    { echo "no clean drain after SIGTERM" >&2; exit 1; }

# --- 3: armed faults, warm store ---------------------------------------
# Transient mid-response disconnect, re-armed by every generation.
export DDSC_FAULT=net-disconnect:1
start_supervised
query_matches_oracle disco1
kill_serving_child
wait_ready
query_matches_oracle disco2
stop_supervised
unset DDSC_FAULT

# Transient cell throw over a cleared store: the cell really recomputes
# under the fault and the bounded retry inside the driver absorbs it.
rm -rf "$work/cache"
export DDSC_FAULT=cell-throw:2
start_supervised
query_matches_oracle throw
stop_supervised
unset DDSC_FAULT

echo "serve chaos: OK"
