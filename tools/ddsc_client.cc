/**
 * @file
 * ddsc-client: query a running ddsc-served.
 *
 * Usage:
 *   ddsc-client [--port N | --port-file PATH]
 *               [--set all|pc|npc] [--configs ABCDE] [--widths 4,8,...]
 *               [--metric ipc|speedup|collapsed] [--csv]
 *               [--deadline-ms N] [--retries N] [--retry-budget-ms N]
 *               [--info] [--health [--json]] [--ping] [--version]
 *
 * Examples:
 *   ddsc-client --port 7411 --set pc --metric speedup
 *   ddsc-client --port-file /tmp/ddsc.port --csv > fig.csv
 *   ddsc-client --port 7411 --info
 *   ddsc-client --port-file /tmp/ddsc.port --retries 10 \
 *               --retry-budget-ms 60000   # rides across restarts
 *   ddsc-client --port-file /tmp/ddsc.port --health --json \
 *               # machine-readable; against a fleet router the
 *               # scalars aggregate and "shards" lists each shard
 *
 * The matrix flags are exactly ddsc-matrix's, and for any query the
 * stdout bytes are identical to what ddsc-matrix prints for the same
 * flags — both render through the same code; the server only adds
 * transport and caching.  Per-request serving counters go to stderr.
 *
 * --deadline-ms bounds how long this client waits, end to end: the
 * value rides in the request and every hop (router, shard) decrements
 * it by the time already spent, so it is a total budget, not a fresh
 * allowance per hop.  An expired request comes back as a typed
 * deadline error while the server keeps computing (the next request
 * gets the cached cells).  The value must be a positive integer of
 * at most 86400000 (24 h); 0 is NOT "no deadline" — omit the flag to
 * wait forever — and 0, negative, non-numeric, or oversized values
 * are usage errors (exit 2), never silently reinterpreted.
 *
 * --retries N retries transport failures and retryable server errors
 * (overloaded, draining, stalled) up to N times with capped
 * exponential backoff and jitter; --retry-budget-ms bounds the total
 * wall clock spent retrying.  With --port-file the file is re-read
 * before every connect, so a client with retries follows a supervised
 * server across restarts (each generation binds a fresh ephemeral
 * port).  Retried queries are answered from the server's cache/store
 * — same bytes, no duplicated simulation.
 *
 * Exit status: 0 success; 1 quarantined cells in the answer (matches
 * ddsc-matrix); 2 usage; 3 transport failure (cannot connect,
 * connection died, malformed bytes — after retries, if enabled);
 * 4 typed server error (overloaded, draining, stalled, deadline,
 * version mismatch, bad request — after retries where retryable).
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/client.hh"
#include "support/portfile.hh"
#include "support/version.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-client [--port N | --port-file PATH]\n"
        "                   [--set all|pc|npc] [--configs ABCDE]\n"
        "                   [--widths 4,8,...] "
        "[--metric ipc|speedup|collapsed]\n"
        "                   [--csv] [--deadline-ms N] [--retries N]\n"
        "                   [--retry-budget-ms N] [--info]\n"
        "                   [--health [--json]] [--ping] "
        "[--version]\n");
    std::exit(2);
}

std::vector<unsigned>
parseWidths(const std::string &spec)
{
    std::vector<unsigned> widths;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const unsigned w = tok == "2k"
            ? 2048u : static_cast<unsigned>(std::atoi(tok.c_str()));
        if (w == 0)
            usage();
        widths.push_back(w);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
    }
    if (widths.empty())
        usage();
    return widths;
}

/** Strict --deadline-ms parse.  atoll would map "0", "-5", "2x", and
 *  overflow all onto values the wire layer reads as "no deadline" or
 *  nonsense; a deadline the user typed must either mean exactly what
 *  it says or be rejected here, before a request is sent. */
std::uint64_t
parseDeadlineMs(const std::string &text)
{
    constexpr std::uint64_t kMaxDeadlineMs = 86'400'000;    // 24 h
    std::uint64_t ms = 0;
    bool ok = !text.empty();
    for (const char c : text) {
        if (c < '0' || c > '9' || ms > kMaxDeadlineMs) {
            ok = false;
            break;
        }
        ms = ms * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!ok || ms == 0 || ms > kMaxDeadlineMs) {
        std::fprintf(stderr,
                     "ddsc-client: --deadline-ms expects a positive "
                     "integer of at most %llu ms, got '%s' (omit the "
                     "flag to wait without a deadline)\n",
                     static_cast<unsigned long long>(kMaxDeadlineMs),
                     text.c_str());
        usage();
    }
    return ms;
}

/** The aggregated health as one JSON object on stdout.  Every value
 *  is a number or a fixed keyword, so no string escaping is needed. */
void
printHealthJson(const net::HealthInfo &hi)
{
    std::printf("{\n");
    std::printf("  \"uptime_ms\": %llu,\n",
                static_cast<unsigned long long>(hi.uptimeMs));
    std::printf("  \"generation\": %llu,\n",
                static_cast<unsigned long long>(hi.generation));
    std::printf("  \"live_sessions\": %llu,\n",
                static_cast<unsigned long long>(hi.liveSessions));
    std::printf("  \"quarantined_cells\": %llu,\n",
                static_cast<unsigned long long>(hi.quarantinedCells));
    std::printf("  \"registry_depth\": %llu,\n",
                static_cast<unsigned long long>(hi.registryDepth));
    std::printf("  \"stalled_cells\": %llu,\n",
                static_cast<unsigned long long>(hi.stalledCells));
    std::printf("  \"store_records\": %llu,\n",
                static_cast<unsigned long long>(hi.storeRecords));
    std::printf("  \"watchdog_budget_ms\": %llu,\n",
                static_cast<unsigned long long>(hi.watchdogBudgetMs));
    std::printf("  \"trace_mapped_bytes\": %llu,\n",
                static_cast<unsigned long long>(hi.traceMappedBytes));
    std::printf("  \"trace_resident_bytes\": %llu,\n",
                static_cast<unsigned long long>(
                    hi.traceResidentBytes));
    std::printf("  \"trace_budget_bytes\": %llu,\n",
                static_cast<unsigned long long>(hi.traceBudgetBytes));
    std::printf("  \"trace_evictions\": %llu,\n",
                static_cast<unsigned long long>(hi.traceEvictions));
    std::printf("  \"shards\": [");
    for (std::size_t i = 0; i < hi.shards.size(); ++i) {
        const net::ShardHealth &sh = hi.shards[i];
        std::printf("%s\n    {\"index\": %u, \"state\": \"%s\", "
                    "\"generation\": %llu, \"restarts\": %llu, "
                    "\"port\": %u, \"stalled_cells\": %llu, "
                    "\"quarantined_cells\": %llu, "
                    "\"store_records\": %llu}",
                    i == 0 ? "" : ",",
                    static_cast<unsigned>(sh.index),
                    net::shardStateName(sh.state),
                    static_cast<unsigned long long>(sh.generation),
                    static_cast<unsigned long long>(sh.restarts),
                    static_cast<unsigned>(sh.port),
                    static_cast<unsigned long long>(sh.stalledCells),
                    static_cast<unsigned long long>(
                        sh.quarantinedCells),
                    static_cast<unsigned long long>(sh.storeRecords));
    }
    std::printf("%s]\n}\n", hi.shards.empty() ? "" : "\n  ");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    MatrixQuery query;
    bool csv = false;
    bool info = false;
    bool health = false;
    bool json = false;
    bool ping = false;
    std::uint16_t port = 7411;
    std::string port_file;
    net::RetryPolicy policy;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--port") {
            port = static_cast<std::uint16_t>(
                std::atoi(value().c_str()));
            if (port == 0)
                usage();
        } else if (arg == "--port-file") {
            port_file = value();
        } else if (arg == "--set") {
            query.set = value();
        } else if (arg == "--configs") {
            query.configs = value();
        } else if (arg == "--widths") {
            query.widths = parseWidths(value());
        } else if (arg == "--metric") {
            query.metric = value();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--deadline-ms") {
            query.deadlineMs = parseDeadlineMs(value());
        } else if (arg == "--retries") {
            policy.retries = static_cast<unsigned>(
                std::atoi(value().c_str()));
        } else if (arg == "--retry-budget-ms") {
            policy.budgetMs = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (arg == "--info") {
            info = true;
        } else if (arg == "--health") {
            health = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--ping") {
            ping = true;
        } else if (arg == "--version") {
            ddsc::support::version::print("ddsc-client");
            return 0;
        } else {
            usage();
        }
    }
    if (json && !health)
        usage();
    std::string why;
    if (!info && !health && !ping && !query.validate(&why)) {
        std::fprintf(stderr, "ddsc-client: %s\n", why.c_str());
        usage();
    }

    try {
        // Re-reading the port file before every connect is what lets
        // retries follow a supervised server across restarts: each
        // generation binds a fresh ephemeral port and rewrites the
        // file once its listener is live.
        auto provider = [port, port_file]() -> std::uint16_t {
            if (!port_file.empty())
                return support::readPortFile(port_file);
            return port;
        };
        net::Client client(provider, -1, policy);

        if (ping) {
            client.ping();
            std::printf("pong\n");
            return 0;
        }
        if (info) {
            const net::ServerInfo si = client.info();
            std::printf("protocol          : %u\n", si.versions.protocol);
            std::printf("trace format      : %u\n",
                        si.versions.traceFormat);
            std::printf("store schema      : %u\n",
                        si.versions.storeSchema);
            std::printf("fingerprint schema: %u\n",
                        si.versions.fingerprintSchema);
            std::printf("jobs              : %u\n", si.jobs);
            std::printf("cached cells      : %llu\n",
                        static_cast<unsigned long long>(si.cachedCells));
            std::printf("simulated         : %llu\n",
                        static_cast<unsigned long long>(si.simulated));
            std::printf("store hits        : %llu\n",
                        static_cast<unsigned long long>(si.storeHits));
            std::printf("coalesced         : %llu\n",
                        static_cast<unsigned long long>(si.coalesced));
            std::printf("requests served   : %llu\n",
                        static_cast<unsigned long long>(
                            si.requestsServed));
            std::printf("active sessions   : %llu\n",
                        static_cast<unsigned long long>(
                            si.activeSessions));
            std::printf("store             : %s\n",
                        si.hasStore ? si.storePath.c_str() : "(none)");
            return 0;
        }
        if (health) {
            const net::HealthInfo hi = client.health();
            if (json) {
                printHealthJson(hi);
                return 0;
            }
            std::printf("uptime ms         : %llu\n",
                        static_cast<unsigned long long>(hi.uptimeMs));
            std::printf("generation        : %llu\n",
                        static_cast<unsigned long long>(
                            hi.generation));
            std::printf("live sessions     : %llu\n",
                        static_cast<unsigned long long>(
                            hi.liveSessions));
            std::printf("quarantined cells : %llu\n",
                        static_cast<unsigned long long>(
                            hi.quarantinedCells));
            std::printf("registry depth    : %llu\n",
                        static_cast<unsigned long long>(
                            hi.registryDepth));
            std::printf("stalled cells     : %llu\n",
                        static_cast<unsigned long long>(
                            hi.stalledCells));
            std::printf("store records     : %llu\n",
                        static_cast<unsigned long long>(
                            hi.storeRecords));
            std::printf("watchdog budget ms: %llu\n",
                        static_cast<unsigned long long>(
                            hi.watchdogBudgetMs));
            std::printf("trace mapped bytes: %llu\n",
                        static_cast<unsigned long long>(
                            hi.traceMappedBytes));
            std::printf("trace resident    : %llu\n",
                        static_cast<unsigned long long>(
                            hi.traceResidentBytes));
            std::printf("trace budget bytes: %llu\n",
                        static_cast<unsigned long long>(
                            hi.traceBudgetBytes));
            std::printf("trace evictions   : %llu\n",
                        static_cast<unsigned long long>(
                            hi.traceEvictions));
            for (const net::ShardHealth &sh : hi.shards) {
                std::printf("shard %-12u: %s, generation %llu, "
                            "%llu restart(s), port %u, "
                            "%llu store record(s)\n",
                            static_cast<unsigned>(sh.index),
                            net::shardStateName(sh.state),
                            static_cast<unsigned long long>(
                                sh.generation),
                            static_cast<unsigned long long>(
                                sh.restarts),
                            static_cast<unsigned>(sh.port),
                            static_cast<unsigned long long>(
                                sh.storeRecords));
            }
            return 0;
        }

        const MatrixResult result = client.matrix(query);
        std::fputs(result.render(csv).c_str(), stdout);
        std::fprintf(stderr,
                     "# %llu cells: %llu simulated, %llu store hits, "
                     "%llu coalesced, %.2fs of simulation\n",
                     static_cast<unsigned long long>(
                         result.summary.cells),
                     static_cast<unsigned long long>(
                         result.summary.simulated),
                     static_cast<unsigned long long>(
                         result.summary.storeHits),
                     static_cast<unsigned long long>(
                         result.summary.coalesced),
                     result.summary.cellSeconds);
        if (!result.quarantined.empty()) {
            std::fputs(
                quarantineSummary(result.quarantined, "ddsc-client")
                    .c_str(),
                stderr);
            return 1;
        }
        return 0;
    } catch (const net::ServerError &e) {
        if (e.retryAfterMs > 0)
            std::fprintf(stderr,
                         "ddsc-client: server error: %s "
                         "(retry after %llu ms)\n",
                         e.what(),
                         static_cast<unsigned long long>(
                             e.retryAfterMs));
        else
            std::fprintf(stderr, "ddsc-client: server error: %s\n",
                         e.what());
        return 4;
    } catch (const net::TransportError &e) {
        std::fprintf(stderr, "ddsc-client: %s\n", e.what());
        return 3;
    }
}
