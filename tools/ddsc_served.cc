/**
 * @file
 * ddsc-served: resident experiment-matrix server.
 *
 * Usage:
 *   ddsc-served [--port N] [--port-file PATH] [--jobs N]
 *               [--cache-dir DIR] [--max-sessions N] [--version]
 *
 * Examples:
 *   ddsc-served --port 7411 --cache-dir /var/tmp/ddsc
 *   ddsc-served --port 0 --port-file /tmp/ddsc.port   # ephemeral port
 *
 * The server keeps traces and every simulated cell resident, so the
 * first client pays for a sweep once and every later identical query
 * is answered from memory (or from the --cache-dir store, which also
 * makes answers survive a restart).  Concurrent identical requests
 * are single-flighted: one simulation per unique cell, everyone gets
 * the same bytes.
 *
 * --port 0 binds a kernel-assigned ephemeral port; --port-file writes
 * the bound port (a single line) once the listener is live, which is
 * also the "ready" signal scripts should poll for.
 *
 * SIGINT/SIGTERM drain: in-flight requests finish and reply, new
 * connections are refused, the store is flushed and compacted, and
 * the process exits 0.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/server.hh"
#include "support/shutdown.hh"
#include "support/version.hh"

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-served [--port N] [--port-file PATH] [--jobs N]\n"
        "                   [--cache-dir DIR] [--max-sessions N] "
        "[--version]\n");
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace ddsc;

    serve::ServerOptions opts;
    opts.port = 7411;       // default; 0 = ephemeral
    std::string port_file;
    bool port_given = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--port") {
            opts.port = static_cast<std::uint16_t>(
                std::atoi(value().c_str()));
            port_given = true;
        } else if (arg == "--port-file") {
            port_file = value();
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(
                std::atoi(value().c_str()));
            if (opts.jobs == 0)
                usage();
        } else if (arg == "--cache-dir") {
            opts.cacheDir = value();
        } else if (arg == "--max-sessions") {
            opts.maxSessions = static_cast<unsigned>(
                std::atoi(value().c_str()));
            if (opts.maxSessions == 0)
                usage();
        } else if (arg == "--version") {
            support::version::print("ddsc-served");
            return 0;
        } else {
            usage();
        }
    }
    (void)port_given;

    support::installShutdownHandler();

    serve::Server server(opts);
    if (!server.valid()) {
        std::fprintf(stderr,
                     "ddsc-served: cannot listen on 127.0.0.1:%u "
                     "(port in use?)\n",
                     static_cast<unsigned>(opts.port));
        return 1;
    }

    if (!port_file.empty()) {
        std::FILE *f = std::fopen(port_file.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr,
                         "ddsc-served: cannot write port file %s\n",
                         port_file.c_str());
            return 1;
        }
        std::fprintf(f, "%u\n",
                     static_cast<unsigned>(server.port()));
        std::fclose(f);
    }

    std::fprintf(stderr, "# ddsc-served listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.port()));
    if (!opts.cacheDir.empty()) {
        std::fprintf(stderr, "# store: %s\n",
                     server.infoSnapshot().storePath.c_str());
    }

    server.run();

    std::fprintf(stderr,
                 "# drained: %llu requests served, %llu cells "
                 "simulated, %llu store hits, %llu coalesced\n",
                 static_cast<unsigned long long>(
                     server.infoSnapshot().requestsServed),
                 static_cast<unsigned long long>(
                     server.infoSnapshot().simulated),
                 static_cast<unsigned long long>(
                     server.infoSnapshot().storeHits),
                 static_cast<unsigned long long>(
                     server.infoSnapshot().coalesced));
    return 0;
}
