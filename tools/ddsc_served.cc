/**
 * @file
 * ddsc-served: resident experiment-matrix server.
 *
 * Usage:
 *   ddsc-served [--port N] [--port-file PATH] [--jobs N]
 *               [--cache-dir DIR] [--max-sessions N]
 *               [--trace-dir DIR] [--trace-budget-mb N]
 *               [--watchdog-budget-ms N] [--supervise]
 *               [--fleet K] [--runtime-dir DIR]
 *               [--router-retry-budget-ms N] [--generation N]
 *               [--pid-file PATH] [--max-restarts K]
 *               [--max-active N] [--queue-depth N]
 *               [--per-conn-inflight N]
 *               [--brownout|--no-brownout] [--cancel-stalled-ms N]
 *               [--batched|--no-batched] [--version]
 *
 * Examples:
 *   ddsc-served --port 7411 --cache-dir /var/tmp/ddsc
 *   ddsc-served --port 0 --port-file /tmp/ddsc.port   # ephemeral port
 *   ddsc-served --supervise --port 0 --port-file /tmp/ddsc.port \
 *               --pid-file /tmp/ddsc.pid --cache-dir /var/tmp/ddsc
 *   ddsc-served --fleet 3 --port 0 --port-file /tmp/ddsc.port \
 *               --runtime-dir /tmp/ddsc-fleet --cache-dir /var/tmp/ddsc
 *
 * The server keeps traces and every simulated cell resident, so the
 * first client pays for a sweep once and every later identical query
 * is answered from memory (or from the --cache-dir store, which also
 * makes answers survive a restart).  Concurrent identical requests
 * are single-flighted: one simulation per unique cell, everyone gets
 * the same bytes.
 *
 * --port 0 binds a kernel-assigned ephemeral port; --port-file writes
 * the bound port (a single line) once the listener is live, which is
 * also the "ready" signal scripts should poll for.  Each supervised
 * generation rewrites it.
 *
 * --supervise runs crash-only: a supervisor process forks the actual
 * server and restarts it whenever it dies for any reason other than a
 * clean drain — non-zero exit, SIGKILL, SIGSEGV — with capped
 * exponential backoff between rapid deaths.  The restarted generation
 * re-attaches the same --cache-dir store, so every cell that was
 * durable before the crash is served from disk, not recomputed.
 * --max-restarts K is the flap breaker: K consecutive deaths within
 * 5 s of birth and the supervisor gives up (exit 1) rather than spin
 * on a server that cannot stay up.  --pid-file records the pid of the
 * *serving* process of the current generation (what a chaos harness
 * or an operator would signal), in supervised and plain mode alike.
 *
 * --watchdog-budget-ms pins the hung-cell watchdog's soft budget; by
 * default it adapts to 8x the slowest cell observed (2 s floor).
 * --cancel-stalled-ms is the watchdog's last rung: a flight still
 * running that long after claim gets its cancel token fired, so the
 * stalled simulation unwinds cooperatively instead of squatting on a
 * worker forever (default 64x the soft budget).
 *
 * Admission control sits in front of the request loop: --max-active
 * caps concurrently resolving requests, --queue-depth
 * bounds how many requests may wait for a simulation slot (beyond it
 * the server sheds with a typed Overloaded carrying a retry-after
 * hint), --per-conn-inflight caps one connection's concurrent
 * requests so a single aggressive client cannot monopolise the queue,
 * and --brownout/--no-brownout controls whether, at a saturated
 * queue, requests answerable entirely from the durable store are
 * still served (they bypass the queue; fresh simulation sheds).
 * Requests whose deadline budget cannot survive the predicted queue
 * wait are shed immediately rather than queued to die.
 *
 * --trace-dir spills each workload's trace once to a DDSCTRC v4 file
 * under DIR and serves it through mmap'd zero-copy cursors instead of
 * holding a private std::vector copy per workload.  --trace-budget-mb
 * caps how many of those mapped bytes stay resident: past the budget
 * the least-recently-swept traces are evicted back to the page cache
 * (madvise), so a corpus far larger than RAM sweeps in bounded RSS.
 * Residency counters show up in the health probe (ddsc-client
 * --health).
 *
 * Sweeps batch by default: same-fingerprint cells of a workload share
 * one streaming front-end pass (served bytes are bit-identical either
 * way).  --no-batched restores the one-cell-at-a-time engine.
 *
 * --fleet K runs the sharded serving fleet instead of one server: K
 * crash-only shards (each one of these processes, exec'd with --port
 * 0 and its own --port-file/--pid-file under --runtime-dir and its
 * own store under <cache-dir>/shard-<i>), each supervised and
 * restarted independently, fronted by a fan-out/merge router that
 * answers the same protocol on --port/--port-file.  A killed shard
 * only ever loses its own in-flight cells; the router retries them
 * against the shard's next generation (--router-retry-budget-ms caps
 * how long), and a shard whose flap breaker trips degrades to typed
 * per-cell errors while the rest of the fleet keeps serving.
 * --generation is internal: the fleet manager stamps each shard life
 * with it.
 *
 * SIGINT/SIGTERM drain: in-flight requests finish and reply, new
 * connections are refused, the store is flushed and compacted, the
 * pid/port files are removed, and the process exits 0.  The
 * supervisor forwards the signal to the serving child and exits
 * cleanly once the drain finishes.
 */

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <poll.h>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/fleet.hh"
#include "serve/server.hh"
#include "support/portfile.hh"
#include "support/shutdown.hh"
#include "support/version.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-served [--port N] [--port-file PATH] [--jobs N]\n"
        "                   [--cache-dir DIR] [--max-sessions N]\n"
        "                   [--trace-dir DIR] [--trace-budget-mb N]\n"
        "                   [--watchdog-budget-ms N] [--supervise]\n"
        "                   [--fleet K] [--runtime-dir DIR]\n"
        "                   [--router-retry-budget-ms N]\n"
        "                   [--pid-file PATH] [--max-restarts K]\n"
        "                   [--max-active N] [--queue-depth N]\n"
        "                   [--per-conn-inflight N]\n"
        "                   [--brownout|--no-brownout]\n"
        "                   [--cancel-stalled-ms N]\n"
        "                   [--batched|--no-batched] [--version]\n");
    std::exit(2);
}

bool
writeOneLine(const std::string &path, unsigned long long value,
             const char *what)
{
    // Atomic (temp + rename): pollers of the port file must never see
    // a truncated or torn line — see support/portfile.hh.
    std::string err;
    if (!support::writeOneLineAtomic(path, value, &err)) {
        std::fprintf(stderr, "ddsc-served: cannot write %s %s: %s\n",
                     what, path.c_str(), err.c_str());
        return false;
    }
    return true;
}

/** Construct and run one server process; the whole body of plain
 *  (unsupervised) mode and of each supervised generation. */
int
runServer(const serve::ServerOptions &opts,
          const std::string &port_file, const std::string &pid_file)
{
    serve::Server server(opts);
    if (!server.valid()) {
        std::fprintf(stderr,
                     "ddsc-served: cannot listen on 127.0.0.1:%u "
                     "(port in use?)\n",
                     static_cast<unsigned>(opts.port));
        return 1;
    }

    if (!pid_file.empty() &&
        !writeOneLine(pid_file,
                      static_cast<unsigned long long>(::getpid()),
                      "pid file"))
        return 1;
    // The port file is the "ready" signal scripts poll for; write it
    // only after the listener is live.
    if (!port_file.empty() &&
        !writeOneLine(port_file, server.port(), "port file"))
        return 1;

    std::fprintf(stderr, "# ddsc-served listening on 127.0.0.1:%u"
                 " (generation %llu)\n",
                 static_cast<unsigned>(server.port()),
                 static_cast<unsigned long long>(opts.generation));
    if (!opts.cacheDir.empty()) {
        std::fprintf(stderr, "# store: %s\n",
                     server.infoSnapshot().storePath.c_str());
    }

    server.run();

    std::fprintf(stderr,
                 "# drained: %llu requests served, %llu cells "
                 "simulated, %llu store hits, %llu coalesced\n",
                 static_cast<unsigned long long>(
                     server.infoSnapshot().requestsServed),
                 static_cast<unsigned long long>(
                     server.infoSnapshot().simulated),
                 static_cast<unsigned long long>(
                     server.infoSnapshot().storeHits),
                 static_cast<unsigned long long>(
                     server.infoSnapshot().coalesced));

    // A clean drain (SIGTERM / exit 0) leaves no stale runtime files
    // behind; a crash leaves them for the next generation to rewrite.
    if (!port_file.empty())
        support::removeRuntimeFile(port_file);
    if (!pid_file.empty())
        support::removeRuntimeFile(pid_file);
    return 0;
}

/** Absolute path of this very binary, for re-exec'ing fleet shards.
 *  Falls back to argv[0] when /proc/self/exe is unreadable. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/** Sleep up to @p delay_ms, returning early (true) when shutdown was
 *  requested meanwhile. */
bool
interruptibleSleep(std::uint64_t delay_ms)
{
    const int fd = support::shutdownFd();
    pollfd p = {fd, POLLIN, 0};
    const int n =
        ::poll(&p, fd >= 0 ? 1u : 0u, static_cast<int>(delay_ms));
    (void)n;
    return support::shutdownRequested();
}

/** Crash-only supervision: fork the server, restart on any unclean
 *  death, give up after @p max_restarts consecutive rapid deaths. */
int
supervise(serve::ServerOptions opts, const std::string &port_file,
          const std::string &pid_file, unsigned max_restarts)
{
    /** A generation that died younger than this is a "rapid" death
     *  for the flap breaker and escalates the restart backoff. */
    constexpr std::uint64_t kRapidDeathMs = 5000;
    constexpr std::uint64_t kBackoffBaseMs = 100;
    constexpr std::uint64_t kBackoffCapMs = 5000;

    unsigned rapid_deaths = 0;
    for (std::uint64_t generation = 0;; ++generation) {
        opts.generation = generation;
        const pid_t child = ::fork();
        if (child < 0) {
            std::fprintf(stderr, "ddsc-served: fork failed: %s\n",
                         std::strerror(errno));
            return 1;
        }
        if (child == 0) {
            // The serving process.  It writes the pid/port files
            // itself, after its listener is live.  A pre-fork signal
            // must not leak in as this generation's shutdown.
            support::resetShutdownAfterFork();
            std::exit(runServer(opts, port_file, pid_file));
        }

        std::fprintf(stderr,
                     "# ddsc-served[supervisor]: generation %llu is "
                     "pid %ld\n",
                     static_cast<unsigned long long>(generation),
                     static_cast<long>(child));

        const auto born = std::chrono::steady_clock::now();
        int status = 0;
        bool failed = false;
        for (bool forwarded = false;;) {
            // Forward our own SIGTERM/SIGINT so the child drains.  A
            // blocking waitpid alone would race a signal delivered
            // just before it parks; polling the shutdown self-pipe
            // (readable from the instant the handler ran) closes that
            // window, and once forwarded there is nothing left to
            // watch, so the wait can block for real.
            if (support::shutdownRequested() && !forwarded) {
                ::kill(child, SIGTERM);
                forwarded = true;
            }
            const pid_t got =
                ::waitpid(child, &status, forwarded ? 0 : WNOHANG);
            if (got == child)
                break;
            if (got < 0 && errno != EINTR) {
                std::fprintf(stderr,
                             "ddsc-served[supervisor]: waitpid "
                             "failed: %s\n", std::strerror(errno));
                failed = true;
                break;
            }
            if (!forwarded) {
                pollfd p = {support::shutdownFd(), POLLIN, 0};
                ::poll(&p, 1, 200);
            }
        }
        if (failed)
            return 1;

        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            std::fprintf(stderr,
                         "# ddsc-served[supervisor]: generation %llu "
                         "drained cleanly\n",
                         static_cast<unsigned long long>(generation));
            return 0;
        }
        if (support::shutdownRequested()) {
            // We asked it to stop and it still died unclean — report
            // but don't restart what we were told to shut down.
            std::fprintf(stderr,
                         "# ddsc-served[supervisor]: shutdown "
                         "requested; not restarting\n");
            return 0;
        }

        const std::uint64_t lifetime_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - born)
                .count());
        if (WIFSIGNALED(status)) {
            std::fprintf(stderr,
                         "# ddsc-served[supervisor]: generation %llu "
                         "killed by signal %d (%s) after %llu ms\n",
                         static_cast<unsigned long long>(generation),
                         WTERMSIG(status), strsignal(WTERMSIG(status)),
                         static_cast<unsigned long long>(lifetime_ms));
        } else {
            std::fprintf(stderr,
                         "# ddsc-served[supervisor]: generation %llu "
                         "exited %d after %llu ms\n",
                         static_cast<unsigned long long>(generation),
                         WIFEXITED(status) ? WEXITSTATUS(status) : -1,
                         static_cast<unsigned long long>(lifetime_ms));
        }

        rapid_deaths =
            lifetime_ms < kRapidDeathMs ? rapid_deaths + 1 : 0;
        if (rapid_deaths >= max_restarts) {
            std::fprintf(stderr,
                         "ddsc-served[supervisor]: flap breaker: %u "
                         "consecutive rapid deaths; giving up\n",
                         rapid_deaths);
            return 1;
        }

        std::uint64_t delay = kBackoffBaseMs;
        for (unsigned i = 1; i < rapid_deaths && delay < kBackoffCapMs;
             ++i)
            delay *= 2;
        if (delay > kBackoffCapMs)
            delay = kBackoffCapMs;
        if (rapid_deaths > 0) {
            std::fprintf(stderr,
                         "# ddsc-served[supervisor]: restarting in "
                         "%llu ms\n",
                         static_cast<unsigned long long>(delay));
            if (interruptibleSleep(delay))
                return 0;
        }
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions opts;
    opts.port = 7411;       // default; 0 = ephemeral
    std::string port_file;
    std::string pid_file;
    bool do_supervise = false;
    unsigned max_restarts = 10;
    unsigned fleet_shards = 0;      // 0 = single-server mode
    std::string runtime_dir;
    std::uint64_t router_retry_budget_ms = 0;   // 0 = default

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--port") {
            opts.port = static_cast<std::uint16_t>(
                std::atoi(value().c_str()));
        } else if (arg == "--port-file") {
            port_file = value();
        } else if (arg == "--pid-file") {
            pid_file = value();
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(
                std::atoi(value().c_str()));
            if (opts.jobs == 0)
                usage();
        } else if (arg == "--cache-dir") {
            opts.cacheDir = value();
        } else if (arg == "--trace-dir") {
            opts.traceDir = value();
        } else if (arg == "--trace-budget-mb") {
            opts.traceBudgetMb = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (arg == "--max-sessions") {
            opts.maxSessions = static_cast<unsigned>(
                std::atoi(value().c_str()));
            if (opts.maxSessions == 0)
                usage();
        } else if (arg == "--watchdog-budget-ms") {
            opts.watchdogBudgetMs = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (arg == "--cancel-stalled-ms") {
            opts.cancelStalledMs = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (arg == "--max-active") {
            opts.admission.maxActive = static_cast<unsigned>(
                std::atoi(value().c_str()));
            if (opts.admission.maxActive == 0)
                usage();
        } else if (arg == "--queue-depth") {
            opts.admission.queueDepth = static_cast<unsigned>(
                std::atoi(value().c_str()));
        } else if (arg == "--per-conn-inflight") {
            opts.admission.perConnInflight = static_cast<unsigned>(
                std::atoi(value().c_str()));
            if (opts.admission.perConnInflight == 0)
                usage();
        } else if (arg == "--brownout") {
            opts.admission.brownout = true;
        } else if (arg == "--no-brownout") {
            opts.admission.brownout = false;
        } else if (arg == "--batched") {
            opts.batched = true;
        } else if (arg == "--no-batched") {
            opts.batched = false;
        } else if (arg == "--supervise") {
            do_supervise = true;
        } else if (arg == "--fleet") {
            fleet_shards = static_cast<unsigned>(
                std::atoi(value().c_str()));
            if (fleet_shards == 0)
                usage();
        } else if (arg == "--runtime-dir") {
            runtime_dir = value();
        } else if (arg == "--router-retry-budget-ms") {
            router_retry_budget_ms = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (arg == "--generation") {
            // Internal: the fleet manager (and nobody else) stamps
            // each shard life with its generation number.
            opts.generation = static_cast<std::uint64_t>(
                std::atoll(value().c_str()));
        } else if (arg == "--max-restarts") {
            max_restarts = static_cast<unsigned>(
                std::atoi(value().c_str()));
            if (max_restarts == 0)
                usage();
        } else if (arg == "--version") {
            support::version::print("ddsc-served");
            return 0;
        } else {
            usage();
        }
    }

    support::installShutdownHandler();

    if (fleet_shards > 0) {
        if (do_supervise) {
            std::fprintf(stderr,
                         "ddsc-served: --fleet already supervises "
                         "each shard; drop --supervise\n");
            usage();
        }
        serve::FleetOptions fopts;
        fopts.shards = fleet_shards;
        fopts.serverExe = selfExePath(argv[0]);
        if (!runtime_dir.empty()) {
            fopts.runtimeDir = runtime_dir;
        } else if (!port_file.empty()) {
            // Default the shard port/pid files next to the router's.
            const std::string parent =
                std::filesystem::path(port_file)
                    .parent_path().string();
            fopts.runtimeDir = parent.empty() ? "." : parent;
        } else {
            std::fprintf(stderr,
                         "ddsc-served: --fleet needs --runtime-dir "
                         "(or --port-file to default it from)\n");
            usage();
        }
        fopts.cacheRoot = opts.cacheDir;
        fopts.portFile = port_file;
        fopts.pidFile = pid_file;
        fopts.maxRestarts = max_restarts;
        fopts.shardOpts = opts;
        fopts.router.port = opts.port;
        fopts.router.maxSessions = opts.maxSessions;
        if (router_retry_budget_ms != 0)
            fopts.router.retry.budgetMs = router_retry_budget_ms;
        return serve::runFleet(fopts);
    }

    if (do_supervise)
        return supervise(opts, port_file, pid_file, max_restarts);
    return runServer(opts, port_file, pid_file);
}
