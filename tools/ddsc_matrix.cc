/**
 * @file
 * ddsc-matrix: run an arbitrary slice of the experiment matrix.
 *
 * Usage:
 *   ddsc-matrix [--set all|pc|npc] [--configs ABCDE] [--widths 4,8,16]
 *               [--metric ipc|speedup|collapsed] [--csv] [--jobs N]
 *               [--cache-dir DIR] [--resume]
 *
 * Examples:
 *   ddsc-matrix --set pc --configs BDE --metric speedup
 *   ddsc-matrix --widths 4,32 --metric collapsed --csv > fig8.csv
 *   ddsc-matrix --jobs $(nproc)        # parallel cell execution
 *   ddsc-matrix --cache-dir run1       # checkpoint cells as they finish
 *   ddsc-matrix --cache-dir run1 --resume   # ...and pick up after a kill
 *
 * All requested cells are simulated concurrently on --jobs worker
 * threads (default $DDSC_JOBS or the hardware concurrency) before the
 * table is printed; results are bit-identical to --jobs 1.
 * DDSC_TRACE_LIMIT truncates traces as everywhere else.
 *
 * --cache-dir DIR (or $DDSC_CACHE_DIR) persists every finished cell to
 * DIR/results.ddsc.  Reusing a non-empty cache requires --resume, so a
 * stale directory is never picked up by accident.  A cell whose
 * simulation keeps failing is quarantined: the rest of the matrix
 * completes, the cell prints as "n/a", the failure summary names it on
 * stderr, and the exit status is 1.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/result_store.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-matrix [--set all|pc|npc] [--configs ABCDE]\n"
        "                   [--widths 4,8,...] "
        "[--metric ipc|speedup|collapsed] [--csv] [--jobs N]\n"
        "                   [--cache-dir DIR] [--resume]\n");
    std::exit(2);
}

std::vector<unsigned>
parseWidths(const std::string &spec)
{
    std::vector<unsigned> widths;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const unsigned w = tok == "2k"
            ? 2048u : static_cast<unsigned>(std::atoi(tok.c_str()));
        if (w == 0)
            usage();
        widths.push_back(w);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
    }
    if (widths.empty())
        usage();
    return widths;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string set = "all";
    std::string configs = "ABCDE";
    std::vector<unsigned> widths = MachineConfig::paperWidths();
    std::string metric = "ipc";
    bool csv = false;
    unsigned jobs = 0;      // 0 = $DDSC_JOBS or hardware concurrency
    std::string cache_dir;
    if (const char *env = std::getenv("DDSC_CACHE_DIR"))
        cache_dir = env;
    bool resume = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--set") {
            set = value();
        } else if (arg == "--configs") {
            configs = value();
        } else if (arg == "--widths") {
            widths = parseWidths(value());
        } else if (arg == "--metric") {
            metric = value();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(value().c_str()));
            if (jobs == 0)
                usage();
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--resume") {
            resume = true;
        } else {
            usage();
        }
    }
    if (resume && cache_dir.empty()) {
        std::fprintf(stderr,
                     "ddsc-matrix: --resume needs --cache-dir "
                     "(or $DDSC_CACHE_DIR)\n");
        usage();
    }
    if (set != "all" && set != "pc" && set != "npc")
        usage();
    if (metric != "ipc" && metric != "speedup" && metric != "collapsed")
        usage();
    for (const char c : configs) {
        if (c < 'A' || c > 'E')
            usage();
    }

    ExperimentDriver driver;
    if (jobs != 0)
        driver.setJobs(jobs);

    std::unique_ptr<ResultStore> store;
    if (!cache_dir.empty()) {
        const auto file =
            std::filesystem::path(cache_dir) / "results.ddsc";
        std::error_code ec;
        if (!resume && std::filesystem::exists(file, ec)) {
            ddsc_fatal("cache '%s' already exists; pass --resume to "
                       "reuse it or remove the directory",
                       file.string().c_str());
        }
        store = std::make_unique<ResultStore>(cache_dir);
        const StoreLoadReport &report = store->loadReport();
        if (resume) {
            std::fprintf(stderr,
                         "# resuming from %s: %zu cells on disk, "
                         "%zu discarded%s%s\n",
                         store->path().c_str(), report.loaded,
                         report.discarded,
                         report.note.empty() ? "" : " -- ",
                         report.note.c_str());
        }
        driver.attachStore(store.get());
    }

    const auto workloads = set == "all"
        ? ExperimentDriver::everything()
        : workloadSubset(set == "pc");

    // Simulate every requested cell up front, in parallel.  Speedup
    // needs the base machine at each width too.
    const auto wall_start = std::chrono::steady_clock::now();
    std::string needed_configs = configs;
    if (metric == "speedup" &&
        needed_configs.find('A') == std::string::npos)
        needed_configs += 'A';
    driver.prefetch(
        ExperimentDriver::cellsFor(workloads, needed_configs, widths));
    const double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start).count();

    // A quarantined cell poisons any aggregate that needs it; the rest
    // of the matrix still prints.  nullopt renders as "n/a".
    auto cell = [&](char config,
                    unsigned width) -> std::optional<double> {
        try {
            if (metric == "ipc")
                return driver.hmeanIpc(workloads, config, width);
            if (metric == "speedup")
                return driver.hmeanSpeedup(workloads, config, width);
            return driver.pctCollapsed(workloads, config, width);
        } catch (const CellQuarantined &) {
            return std::nullopt;
        }
    };

    if (csv) {
        std::printf("config");
        for (const unsigned w : widths)
            std::printf(",%s", MachineConfig::widthLabel(w).c_str());
        std::printf("\n");
        for (const char config : configs) {
            std::printf("%c", config);
            for (const unsigned w : widths) {
                const std::optional<double> v = cell(config, w);
                if (v)
                    std::printf(",%.4f", *v);
                else
                    std::printf(",n/a");
            }
            std::printf("\n");
        }
    } else {
        TextTable table;
        std::vector<std::string> header = {"config"};
        for (const unsigned w : widths)
            header.push_back("w=" + MachineConfig::widthLabel(w));
        table.header(std::move(header));
        for (const char config : configs) {
            std::vector<std::string> row = {std::string(1, config)};
            for (const unsigned w : widths) {
                const std::optional<double> v = cell(config, w);
                row.push_back(v ? TextTable::num(*v)
                                : std::string("n/a"));
            }
            table.row(std::move(row));
        }
        std::printf("%s (%s, %s)\n%s", metric.c_str(), set.c_str(),
                    "harmonic mean over the set",
                    table.render().c_str());
    }

    std::FILE *status = csv ? stderr : stdout;
    std::fprintf(status,
                 "%s%zu cells, %.2fs of simulation in %.2fs wall "
                 "(%u jobs)\n",
                 csv ? "# " : "", driver.cachedCells(),
                 driver.cachedCellSeconds(), wall_seconds,
                 driver.jobs());
    if (store) {
        std::fprintf(status, "%s%zu cells served from %s\n",
                     csv ? "# " : "", driver.storeHits(),
                     store->path().c_str());
    }

    const std::vector<CellFailure> quarantined =
        driver.quarantineReport();
    if (!quarantined.empty()) {
        std::fprintf(stderr,
                     "ddsc-matrix: %zu cell%s quarantined:\n",
                     quarantined.size(),
                     quarantined.size() == 1 ? "" : "s");
        for (const CellFailure &f : quarantined) {
            std::fprintf(stderr, "  %s: %s (after %u attempts)\n",
                         f.key.c_str(), f.message.c_str(), f.attempts);
        }
        return 1;
    }
    return 0;
}
