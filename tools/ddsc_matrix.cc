/**
 * @file
 * ddsc-matrix: run an arbitrary slice of the experiment matrix.
 *
 * Usage:
 *   ddsc-matrix [--set all|pc|npc] [--configs ABCDE] [--widths 4,8,16]
 *               [--metric ipc|speedup|collapsed] [--csv] [--jobs N]
 *
 * Examples:
 *   ddsc-matrix --set pc --configs BDE --metric speedup
 *   ddsc-matrix --widths 4,32 --metric collapsed --csv > fig8.csv
 *   ddsc-matrix --jobs $(nproc)        # parallel cell execution
 *
 * All requested cells are simulated concurrently on --jobs worker
 * threads (default $DDSC_JOBS or the hardware concurrency) before the
 * table is printed; results are bit-identical to --jobs 1.
 * DDSC_TRACE_LIMIT truncates traces as everywhere else.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "support/table.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-matrix [--set all|pc|npc] [--configs ABCDE]\n"
        "                   [--widths 4,8,...] "
        "[--metric ipc|speedup|collapsed] [--csv] [--jobs N]\n");
    std::exit(2);
}

std::vector<unsigned>
parseWidths(const std::string &spec)
{
    std::vector<unsigned> widths;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const unsigned w = tok == "2k"
            ? 2048u : static_cast<unsigned>(std::atoi(tok.c_str()));
        if (w == 0)
            usage();
        widths.push_back(w);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
    }
    if (widths.empty())
        usage();
    return widths;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string set = "all";
    std::string configs = "ABCDE";
    std::vector<unsigned> widths = MachineConfig::paperWidths();
    std::string metric = "ipc";
    bool csv = false;
    unsigned jobs = 0;      // 0 = $DDSC_JOBS or hardware concurrency

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--set") {
            set = value();
        } else if (arg == "--configs") {
            configs = value();
        } else if (arg == "--widths") {
            widths = parseWidths(value());
        } else if (arg == "--metric") {
            metric = value();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(value().c_str()));
            if (jobs == 0)
                usage();
        } else {
            usage();
        }
    }
    if (set != "all" && set != "pc" && set != "npc")
        usage();
    if (metric != "ipc" && metric != "speedup" && metric != "collapsed")
        usage();
    for (const char c : configs) {
        if (c < 'A' || c > 'E')
            usage();
    }

    ExperimentDriver driver;
    if (jobs != 0)
        driver.setJobs(jobs);
    const auto workloads = set == "all"
        ? ExperimentDriver::everything()
        : workloadSubset(set == "pc");

    // Simulate every requested cell up front, in parallel.  Speedup
    // needs the base machine at each width too.
    const auto wall_start = std::chrono::steady_clock::now();
    std::string needed_configs = configs;
    if (metric == "speedup" &&
        needed_configs.find('A') == std::string::npos)
        needed_configs += 'A';
    driver.prefetch(
        ExperimentDriver::cellsFor(workloads, needed_configs, widths));
    const double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start).count();

    auto cell = [&](char config, unsigned width) {
        if (metric == "ipc")
            return driver.hmeanIpc(workloads, config, width);
        if (metric == "speedup")
            return driver.hmeanSpeedup(workloads, config, width);
        return driver.pctCollapsed(workloads, config, width);
    };

    if (csv) {
        std::printf("config");
        for (const unsigned w : widths)
            std::printf(",%s", MachineConfig::widthLabel(w).c_str());
        std::printf("\n");
        for (const char config : configs) {
            std::printf("%c", config);
            for (const unsigned w : widths)
                std::printf(",%.4f", cell(config, w));
            std::printf("\n");
        }
        std::fprintf(stderr,
                     "# %zu cells, %.2fs of simulation in %.2fs wall "
                     "(%u jobs)\n",
                     driver.cachedCells(), driver.cachedCellSeconds(),
                     wall_seconds, driver.jobs());
        return 0;
    }

    TextTable table;
    std::vector<std::string> header = {"config"};
    for (const unsigned w : widths)
        header.push_back("w=" + MachineConfig::widthLabel(w));
    table.header(std::move(header));
    for (const char config : configs) {
        std::vector<std::string> row = {std::string(1, config)};
        for (const unsigned w : widths)
            row.push_back(TextTable::num(cell(config, w)));
        table.row(std::move(row));
    }
    std::printf("%s (%s, %s)\n%s", metric.c_str(), set.c_str(),
                "harmonic mean over the set", table.render().c_str());
    std::printf("%zu cells, %.2fs of simulation in %.2fs wall "
                "(%u jobs)\n",
                driver.cachedCells(), driver.cachedCellSeconds(),
                wall_seconds, driver.jobs());
    return 0;
}
