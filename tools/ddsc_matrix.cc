/**
 * @file
 * ddsc-matrix: run an arbitrary slice of the experiment matrix.
 *
 * Usage:
 *   ddsc-matrix [--set all|pc|npc] [--configs ABCDEFG] [--widths 4,8,16]
 *               [--metric ipc|speedup|collapsed] [--csv] [--jobs N]
 *               [--cache-dir DIR] [--resume] [--batched|--no-batched]
 *               [--trace-dir DIR] [--list-configs] [--version]
 *
 * Examples:
 *   ddsc-matrix --set pc --configs BDE --metric speedup
 *   ddsc-matrix --widths 4,32 --metric collapsed --csv > fig8.csv
 *   ddsc-matrix --jobs $(nproc)        # parallel cell execution
 *   ddsc-matrix --cache-dir run1       # checkpoint cells as they finish
 *   ddsc-matrix --cache-dir run1 --resume   # ...and pick up after a kill
 *
 * All requested cells are simulated concurrently on --jobs worker
 * threads (default $DDSC_JOBS or the hardware concurrency) before the
 * table is printed; results are bit-identical to --jobs 1.
 * DDSC_TRACE_LIMIT truncates traces as everywhere else.
 *
 * --trace-dir DIR spills each workload's trace once to a DDSCTRC v4
 * file under DIR and sweeps it through mmap'd zero-copy cursors, so a
 * matrix over long traces no longer holds one std::vector per
 * workload; results are bit-identical either way.
 *
 * stdout carries only the table/CSV (the same bytes ddsc-client
 * prints for the same query); status and timing lines go to stderr
 * prefixed with "# ".
 *
 * --cache-dir DIR (or $DDSC_CACHE_DIR) persists every finished cell to
 * DIR/results.ddsc.  Reusing a non-empty cache requires --resume, so a
 * The driver batches by default: cells of a workload whose front-end
 * knobs agree share one streaming decode/predict pass feeding every
 * width's window engine (bit-identical results; see
 * docs/simulator.md).  --no-batched falls back to the historical
 * one-cell-at-a-time path, e.g. to time it or to bisect a divergence.
 *
 * stale directory is never picked up by accident.  A cell whose
 * simulation keeps failing is quarantined: the rest of the matrix
 * completes, the cell prints as "n/a", the failure summary names it on
 * stderr, and the exit status is 1.
 *
 * Ctrl-C (or SIGTERM) interrupts the sweep cooperatively: cells that
 * already finished are flushed to the attached store record-complete,
 * workers skip cells they have not started, and the tool exits
 * 128+signal with a note saying how much was checkpointed — no torn
 * tail for --resume to recover.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/matrix_query.hh"
#include "sim/result_store.hh"
#include "spec/orchestrator.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "support/version.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-matrix [--set all|pc|npc] [--configs ABCDEFG]\n"
        "                   [--widths 4,8,...] "
        "[--metric ipc|speedup|collapsed] [--csv] [--jobs N]\n"
        "                   [--cache-dir DIR] [--resume] "
        "[--batched|--no-batched]\n"
        "                   [--trace-dir DIR] [--list-configs] "
        "[--version]\n");
    std::exit(2);
}

/** `--list-configs`: every known configuration letter with its active
 *  speculation-module stack and cache-key fingerprint. */
[[noreturn]] void
listConfigs()
{
    std::printf("known configurations (fingerprint schema %u, %u "
                "fields; width 16 shown):\n",
                support::version::kFingerprintSchema,
                support::version::kFingerprintFields);
    for (const char c : MachineConfig::knownConfigs()) {
        const MachineConfig cfg = MachineConfig::paper(c, 16);
        std::printf("  %c  %s\n", c, MachineConfig::letterSummary(c));
        std::printf("     modules    : %s\n",
                    spec::moduleStackSummary(cfg).c_str());
        std::printf("     fingerprint: %s\n", cfg.fingerprint().c_str());
    }
    std::exit(0);
}

std::vector<unsigned>
parseWidths(const std::string &spec)
{
    std::vector<unsigned> widths;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        const unsigned w = tok == "2k"
            ? 2048u : static_cast<unsigned>(std::atoi(tok.c_str()));
        if (w == 0)
            usage();
        widths.push_back(w);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
    }
    if (widths.empty())
        usage();
    return widths;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    MatrixQuery query;
    bool csv = false;
    unsigned jobs = 0;      // 0 = $DDSC_JOBS or hardware concurrency
    std::string cache_dir;
    if (const char *env = std::getenv("DDSC_CACHE_DIR"))
        cache_dir = env;
    bool resume = false;
    bool batched = true;
    std::string trace_dir;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--set") {
            query.set = value();
        } else if (arg == "--configs") {
            query.configs = value();
        } else if (arg == "--widths") {
            query.widths = parseWidths(value());
        } else if (arg == "--metric") {
            query.metric = value();
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(value().c_str()));
            if (jobs == 0)
                usage();
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--trace-dir") {
            trace_dir = value();
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--batched") {
            batched = true;
        } else if (arg == "--no-batched") {
            batched = false;
        } else if (arg == "--list-configs") {
            listConfigs();
        } else if (arg == "--version") {
            support::version::print("ddsc-matrix");
            return 0;
        } else {
            usage();
        }
    }
    if (resume && cache_dir.empty()) {
        std::fprintf(stderr,
                     "ddsc-matrix: --resume needs --cache-dir "
                     "(or $DDSC_CACHE_DIR)\n");
        usage();
    }
    std::string why;
    if (!query.validate(&why)) {
        std::fprintf(stderr, "ddsc-matrix: %s\n", why.c_str());
        usage();
    }

    support::installShutdownHandler();

    ExperimentDriver driver;
    if (jobs != 0)
        driver.setJobs(jobs);
    driver.setInterruptible(true);
    driver.setBatched(batched);
    if (!trace_dir.empty())
        driver.setTraceDir(trace_dir);

    std::unique_ptr<ResultStore> store;
    if (!cache_dir.empty()) {
        const auto file =
            std::filesystem::path(cache_dir) / "results.ddsc";
        std::error_code ec;
        if (!resume && std::filesystem::exists(file, ec)) {
            ddsc_fatal("cache '%s' already exists; pass --resume to "
                       "reuse it or remove the directory",
                       file.string().c_str());
        }
        store = std::make_unique<ResultStore>(cache_dir);
        const StoreLoadReport &report = store->loadReport();
        if (resume) {
            std::fprintf(stderr,
                         "# resuming from %s: %zu cells on disk, "
                         "%zu discarded%s%s\n",
                         store->path().c_str(), report.loaded,
                         report.discarded,
                         report.note.empty() ? "" : " -- ",
                         report.note.c_str());
        }
        driver.attachStore(store.get());
    }

    const auto wall_start = std::chrono::steady_clock::now();
    const MatrixResult result = runMatrixQuery(driver, query);
    const double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start).count();

    if (result.interrupted) {
        if (store) {
            std::fprintf(stderr,
                         "# interrupted: %zu finished cells "
                         "checkpointed to %s; rerun with --resume to "
                         "continue\n",
                         store->size(), store->path().c_str());
        } else {
            std::fprintf(stderr,
                         "# interrupted: partial results discarded "
                         "(use --cache-dir to checkpoint)\n");
        }
        const int sig = support::shutdownSignal();
        return 128 + (sig != 0 ? sig : 2 /* as if SIGINT */);
    }

    std::fputs(result.render(csv).c_str(), stdout);

    std::fprintf(stderr,
                 "# %zu cells, %.2fs of simulation in %.2fs wall "
                 "(%u jobs)\n",
                 driver.cachedCells(), driver.cachedCellSeconds(),
                 wall_seconds, driver.jobs());
    if (store) {
        std::fprintf(stderr, "# %zu cells served from %s\n",
                     driver.storeHits(), store->path().c_str());
    }

    if (!result.quarantined.empty()) {
        std::fputs(
            quarantineSummary(result.quarantined, "ddsc-matrix")
                .c_str(),
            stderr);
        return 1;
    }
    return 0;
}
