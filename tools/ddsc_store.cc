/**
 * @file
 * ddsc-store — offline maintenance for result-store directories.
 *
 *   ddsc-store info DIR...
 *       Load each store and report its path, live cells, and any
 *       torn-tail or schema diagnosis from the load.
 *
 *   ddsc-store compact DIR...
 *       Rewrite each store with exactly one record per live cell
 *       (key-sorted, so the bytes are deterministic).
 *
 *   ddsc-store merge --into DIR SRC_DIR...
 *       Fold the per-shard stores of a serving fleet (or any set of
 *       stores) into one resumable store: every cell missing from DIR
 *       is appended, byte-identical duplicates are skipped, and the
 *       result is compacted.  A duplicate that *disagrees* (same cell
 *       key, different fingerprint/digest/stats) keeps DIR's entry,
 *       is named on stderr, and fails the merge with exit 1 — two
 *       stores that dispute a cell should be inspected, not blessed.
 *
 * The compacted output is a deterministic function of the merged
 * cells (key-sorted, canonical payloads): merging the same inputs
 * always yields the same file, and a ddsc-matrix --resume run over it
 * re-simulates nothing.
 *
 * Exit status: 0 clean, 1 merge conflicts, 2 usage or missing store.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/result_store.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-store info DIR...\n"
        "       ddsc-store compact DIR...\n"
        "       ddsc-store merge --into DIR SRC_DIR...\n");
    std::exit(2);
}

/** Opening a store auto-creates the directory and file; for existing
 *  inputs that courtesy would turn a typo into an empty store, so
 *  demand the file up front. */
void
requireStore(const std::string &dir)
{
    const std::filesystem::path file =
        std::filesystem::path(dir) / "results.ddsc";
    std::error_code ec;
    if (!std::filesystem::exists(file, ec)) {
        std::fprintf(stderr,
                     "ddsc-store: no result store in '%s' (expected "
                     "%s)\n",
                     dir.c_str(), file.string().c_str());
        std::exit(2);
    }
}

void
printInfo(const ResultStore &store)
{
    const StoreLoadReport &report = store.loadReport();
    std::printf("%s: %zu cells", store.path().c_str(), store.size());
    if (report.discarded > 0)
        std::printf(", %zu torn record(s) discarded",
                    report.discarded);
    if (report.schemaReset)
        std::printf(", schema reset");
    std::printf("\n");
    if (!report.note.empty())
        std::printf("  note: %s\n", report.note.c_str());
}

int
cmdInfo(const std::vector<std::string> &dirs)
{
    for (const std::string &dir : dirs) {
        requireStore(dir);
        ResultStore store(dir);
        printInfo(store);
    }
    return 0;
}

int
cmdCompact(const std::vector<std::string> &dirs)
{
    for (const std::string &dir : dirs) {
        requireStore(dir);
        ResultStore store(dir);
        const std::size_t cells = store.size();
        store.compact();
        std::printf("%s: compacted to %zu cell(s)\n",
                    store.path().c_str(), cells);
    }
    return 0;
}

int
cmdMerge(const std::string &into,
         const std::vector<std::string> &sources)
{
    // The destination may not exist yet — the common case is merging
    // shard stores into a fresh directory — but every source must.
    for (const std::string &src : sources)
        requireStore(src);

    ResultStore dest(into);
    StoreMergeReport total;
    for (const std::string &src : sources) {
        ResultStore shard(src);
        const StoreMergeReport r = dest.absorb(shard);
        std::printf("%s: +%zu cell(s), %zu duplicate(s), "
                    "%zu conflict(s)\n",
                    shard.path().c_str(), r.added, r.identical,
                    r.conflicts);
        total.added += r.added;
        total.identical += r.identical;
        total.conflicts += r.conflicts;
    }
    dest.compact();
    std::printf("%s: %zu cell(s) after merge\n", dest.path().c_str(),
                dest.size());

    if (total.conflicts > 0) {
        std::fprintf(stderr,
                     "ddsc-store: %zu conflicting cell(s); the merged "
                     "store kept the first version seen — inspect the "
                     "inputs before trusting it\n",
                     total.conflicts);
        return 1;
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];

    std::vector<std::string> dirs;
    std::string into;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--into") {
            if (i + 1 >= argc)
                usage();
            into = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else {
            dirs.push_back(arg);
        }
    }

    if (cmd == "info" && !dirs.empty() && into.empty())
        return cmdInfo(dirs);
    if (cmd == "compact" && !dirs.empty() && into.empty())
        return cmdCompact(dirs);
    if (cmd == "merge" && !dirs.empty() && !into.empty())
        return cmdMerge(into, dirs);
    usage();
}
