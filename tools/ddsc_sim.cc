/**
 * @file
 * ddsc-sim: command-line driver for the limit simulator.
 *
 * Usage:
 *   ddsc-sim --workload li [--scale N] [--config D] [--width 16]
 *   ddsc-sim --asm prog.s  [--config D] [--width 16]
 *   ddsc-sim --trace prog.trc [--config D] [--width 16]
 *
 * Options:
 *   --workload NAME   one of compress espresso eqntott li go ijpeg
 *   --scale N         workload scale (0 = default)
 *   --asm FILE        assemble FILE, execute it, simulate its trace
 *   --trace FILE      simulate a binary trace file (see ddsc-asm);
 *                     a DDSCTRC v4 file with no --limit is mmap'd and
 *                     swept zero-copy instead of loaded into memory
 *   --config X..      one or more of A..G (default D); several
 *                     letters (e.g. --config ABDE) sweep the trace
 *                     through each machine, in parallel across --jobs
 *   --width N         issue width (default 16); window is 2x width
 *   --elim            enable node elimination (extension)
 *   --addrpred KIND   twodelta|lastvalue|context (default twodelta)
 *   --limit N         simulate at most N instructions
 *   --jobs N          worker threads for multi-config sweeps
 *                     (default $DDSC_JOBS or hardware concurrency)
 *   --cache-dir DIR   persist each finished config's stats to
 *                     DIR/results.ddsc (or $DDSC_CACHE_DIR)
 *   --resume          reuse an existing cache: configs whose stored
 *                     fingerprint and trace digest still match are
 *                     served from disk instead of re-simulated
 *   --batched         share one front-end pass among configs whose
 *                     front-end knobs agree (default; bit-identical)
 *   --no-batched      simulate every config with its own full pass
 *   --list-configs    print every known configuration letter with its
 *                     speculation-module stack and fingerprint, exit
 *   --version         print format/schema versions and exit
 *
 * A config whose simulation keeps throwing is contained: the other
 * configs of the sweep still run and print, the failure summary names
 * the bad cell on stderr, and the exit status is 1.
 *
 * Ctrl-C (or SIGTERM) during a sweep is cooperative: configs that
 * already finished are still persisted to the attached cache
 * record-complete, unstarted configs are skipped, and the exit status
 * is 128+signal.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheduler.hh"
#include "masm/assembler.hh"
#include "spec/orchestrator.hh"
#include "trace/mapped.hh"
#include "sim/batched.hh"
#include "sim/result_store.hh"
#include "support/fault.hh"
#include "support/logging.hh"
#include "support/shutdown.hh"
#include "support/thread_pool.hh"
#include "support/version.hh"
#include "vm/vm.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-sim --workload NAME | --asm FILE | --trace FILE\n"
        "                [--scale N] [--config A..G ...] [--width N]\n"
        "                [--elim] [--addrpred twodelta|lastvalue|context]\n"
        "                [--limit N] [--jobs N] [--cache-dir DIR]\n"
        "                [--resume] [--batched|--no-batched]\n"
        "                [--list-configs] [--version]\n");
    std::exit(2);
}

/** `--list-configs`: every known configuration letter with its active
 *  speculation-module stack and cache-key fingerprint. */
[[noreturn]] void
listConfigs(unsigned width)
{
    std::printf("known configurations (fingerprint schema %u, %u "
                "fields; width %u shown):\n",
                support::version::kFingerprintSchema,
                support::version::kFingerprintFields, width);
    for (const char c : MachineConfig::knownConfigs()) {
        const MachineConfig cfg = MachineConfig::paper(c, width);
        std::printf("  %c  %s\n", c, MachineConfig::letterSummary(c));
        std::printf("     modules    : %s\n",
                    spec::moduleStackSummary(cfg).c_str());
        std::printf("     fingerprint: %s\n", cfg.fingerprint().c_str());
    }
    std::exit(0);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        ddsc_fatal("cannot open '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
printStats(const MachineConfig &config, const SchedStats &stats)
{
    std::printf("machine     : %s, width %u, window %u\n",
                config.name.c_str(), config.issueWidth,
                config.windowSize);
    std::printf("instructions: %llu\n",
                static_cast<unsigned long long>(stats.instructions));
    std::printf("cycles      : %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("IPC         : %.3f  (%.1f%% idle cycles, peak %llu "
                "issues/cycle)\n",
                stats.ipc(), stats.pctIdleCycles(),
                static_cast<unsigned long long>(
                    stats.issuedPerCycle.maxKey()));
    std::printf("branches    : %llu cond, %.2f%% predicted correctly\n",
                static_cast<unsigned long long>(stats.condBranches),
                stats.branchAccuracy());
    if (config.loadSpec != LoadSpecMode::None && stats.loads > 0) {
        std::printf("loads       : %llu (",
                    static_cast<unsigned long long>(stats.loads));
        for (unsigned c = 0; c < kNumLoadClasses; ++c) {
            std::printf("%s%s %.1f%%", c ? ", " : "",
                        std::string(loadClassName(
                            static_cast<LoadClass>(c))).c_str(),
                        stats.loadClassPct(static_cast<LoadClass>(c)));
        }
        std::printf(")\n");
    }
    if (config.collapsing) {
        std::printf("collapsing  : %.1f%% of instructions, "
                    "%llu events (3-1 %.1f%%, 4-1 %.1f%%, 0-op %.1f%%)\n",
                    stats.pctCollapsed(),
                    static_cast<unsigned long long>(
                        stats.collapse.events()),
                    stats.collapse.pctOf(CollapseCategory::ThreeOne),
                    stats.collapse.pctOf(CollapseCategory::FourOne),
                    stats.collapse.pctOf(CollapseCategory::ZeroOp));
    }
    if (config.memDep == MemDepMode::Predicted) {
        std::printf("mem-dep     : %llu predicted dependent "
                    "(%llu false), %llu squashes\n",
                    static_cast<unsigned long long>(
                        stats.memDepPredictedDeps),
                    static_cast<unsigned long long>(
                        stats.memDepFalseDeps),
                    static_cast<unsigned long long>(
                        stats.memDepSquashes));
    }
    if (config.loadValuePrediction) {
        std::printf("value-pred  : %llu hits, %llu confident-wrong\n",
                    static_cast<unsigned long long>(stats.valuePredHits),
                    static_cast<unsigned long long>(
                        stats.valuePredWrong));
    }
    if (config.nodeElimination) {
        std::printf("eliminated  : %.2f%% of instructions\n",
                    stats.pctEliminated());
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string workload, asm_path, trace_path;
    unsigned scale = 0;
    std::string config_ids = "D";
    unsigned width = 16;
    bool elim = false;
    AddrPredKind pred_kind = AddrPredKind::TwoDelta;
    std::uint64_t limit = 0;
    unsigned jobs = support::ThreadPool::defaultJobs();
    std::string cache_dir;
    if (const char *env = std::getenv("DDSC_CACHE_DIR"))
        cache_dir = env;
    bool resume = false;
    bool batched = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = value();
        } else if (arg == "--asm") {
            asm_path = value();
        } else if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--scale") {
            scale = static_cast<unsigned>(std::atoi(value().c_str()));
        } else if (arg == "--config") {
            const std::string v = value();
            if (v.empty())
                usage();
            for (const char c : v) {
                if (!ddsc::MachineConfig::isKnownConfig(c))
                    usage();
            }
            config_ids = v;
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(value().c_str()));
            if (jobs == 0)
                usage();
        } else if (arg == "--width") {
            width = static_cast<unsigned>(std::atoi(value().c_str()));
            if (width == 0)
                usage();
        } else if (arg == "--elim") {
            elim = true;
        } else if (arg == "--addrpred") {
            const std::string v = value();
            if (v == "twodelta") {
                pred_kind = AddrPredKind::TwoDelta;
            } else if (v == "lastvalue") {
                pred_kind = AddrPredKind::LastValue;
            } else if (v == "context") {
                pred_kind = AddrPredKind::Context;
            } else {
                usage();
            }
        } else if (arg == "--limit") {
            limit = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--cache-dir") {
            cache_dir = value();
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--batched") {
            batched = true;
        } else if (arg == "--no-batched") {
            batched = false;
        } else if (arg == "--list-configs") {
            listConfigs(width);
        } else if (arg == "--version") {
            support::version::print("ddsc-sim");
            return 0;
        } else {
            usage();
        }
    }

    support::installShutdownHandler();

    const int sources = (workload.empty() ? 0 : 1) +
        (asm_path.empty() ? 0 : 1) + (trace_path.empty() ? 0 : 1);
    if (sources != 1)
        usage();
    if (resume && cache_dir.empty()) {
        std::fprintf(stderr,
                     "ddsc-sim: --resume needs --cache-dir "
                     "(or $DDSC_CACHE_DIR)\n");
        usage();
    }

    std::unique_ptr<ResultStore> store;
    if (!cache_dir.empty()) {
        const auto file =
            std::filesystem::path(cache_dir) / "results.ddsc";
        std::error_code ec;
        if (!resume && std::filesystem::exists(file, ec)) {
            ddsc_fatal("cache '%s' already exists; pass --resume to "
                       "reuse it or remove the directory",
                       file.string().c_str());
        }
        store = std::make_unique<ResultStore>(cache_dir);
        if (resume) {
            const StoreLoadReport &report = store->loadReport();
            std::fprintf(stderr,
                         "# resuming from %s: %zu cells on disk, "
                         "%zu discarded%s%s\n",
                         store->path().c_str(), report.loaded,
                         report.discarded,
                         report.note.empty() ? "" : " -- ",
                         report.note.c_str());
        }
    }

    // Build the trace.
    std::unique_ptr<TraceSource> source;
    if (!workload.empty()) {
        std::uint32_t checksum = 0;
        auto trace = std::make_unique<VectorTraceSource>(
            traceWorkload(findWorkload(workload), scale, &checksum));
        std::printf("workload    : %s (%zu instructions, checksum %u)\n",
                    workload.c_str(), trace->size(), checksum);
        source = std::move(trace);
    } else if (!asm_path.empty()) {
        const Program program = assembleOrDie(readFile(asm_path));
        auto trace = std::make_unique<VectorTraceSource>();
        VectorTraceSink sink(*trace);
        Vm vm(program);
        const Vm::RunResult run = vm.run(&sink, 2'000'000'000ull);
        if (!run.halted)
            ddsc_fatal("'%s' did not halt", asm_path.c_str());
        std::printf("program     : %s (%zu instructions, r25=%u)\n",
                    asm_path.c_str(), trace->size(),
                    vm.reg(kChecksumReg));
        source = std::move(trace);
    } else {
        source = std::make_unique<TraceFileSource>(trace_path);
        std::printf("trace file  : %s\n", trace_path.c_str());
    }

    auto machineFor = [&](char config_id) {
        MachineConfig config = MachineConfig::paper(config_id, width);
        config.nodeElimination = elim;
        config.addrPredKind = pred_kind;
        return config;
    };

    // Without a cache a single config streams the source directly;
    // everything else shares one immutable trace image so each run
    // gets a private cursor and the cache key can include the trace
    // digest.
    if (config_ids.size() == 1 && !store) {
        const MachineConfig config = machineFor(config_ids[0]);
        LimitScheduler scheduler(config);
        SchedStats stats;
        if (limit != 0) {
            BoundedTraceSource bounded(*source, limit);
            stats = scheduler.run(bounded);
        } else {
            stats = scheduler.run(*source);
        }
        printStats(config, stats);
        return 0;
    }

    // A v4 --trace input with no --limit never touches a
    // std::vector: the file is mmap'd once and every config's cursor
    // walks the same read-only pages (digest comes from the header,
    // so even the cache key costs no pass over the records).
    std::unique_ptr<const SharedTrace> shared;
    if (!trace_path.empty() && limit == 0 &&
        MappedTraceSource::probe(trace_path, nullptr, nullptr)) {
        auto mapped = std::make_unique<MappedTraceSource>(trace_path);
        std::printf("mapped      : %llu records, %llu bytes\n",
                    static_cast<unsigned long long>(
                        mapped->recordCount()),
                    static_cast<unsigned long long>(
                        mapped->mappedBytes()));
        shared = std::move(mapped);
    } else {
        auto materialized = std::make_unique<VectorTraceSource>();
        VectorTraceSink sink(*materialized);
        TraceRecord rec;
        std::uint64_t taken = 0;
        while ((limit == 0 || taken < limit) && source->next(rec)) {
            sink.emit(rec);
            ++taken;
        }
        shared = std::move(materialized);
    }
    const std::string label = !workload.empty() ? workload
        : !asm_path.empty() ? asm_path : trace_path;
    const std::uint64_t digest = store ? shared->digest() : 0;

    struct CellRun
    {
        MachineConfig config;
        std::string key;        ///< e.g. "li/D/16"
        SchedStats stats;
        bool ok = false;
        bool fromStore = false;
        std::string error;
        unsigned attempts = 0;
    };
    std::vector<CellRun> runs;
    for (const char c : config_ids) {
        CellRun run;
        run.config = machineFor(c);
        run.key = label + "/" + std::string(1, c) + "/" +
                  std::to_string(width);
        if (store) {
            const SchedStats *stored = store->lookup(
                run.key, run.config.fingerprint(), digest);
            if (stored) {
                run.stats = *stored;
                run.ok = run.fromStore = true;
            }
        }
        runs.push_back(std::move(run));
    }

    // Run every machine over a private read-only cursor, in parallel.
    // Results print in the order the configs were given regardless of
    // which finished first.  A throwing config is retried, then
    // reported — it never takes the rest of the sweep down.
    constexpr unsigned kAttempts = 3;

    if (batched) {
        // Group pending configs by front-end fingerprint: each group
        // is one streaming decode/predict pass feeding all its window
        // engines (the paper's ABDE sweep costs two passes, not
        // four).  A config that fails inside its group falls through
        // to the per-cell loop below with the attempt count continued,
        // so transient faults recover and persistent ones quarantine
        // exactly as on the legacy path.
        std::vector<std::vector<std::size_t>> groups;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            if (runs[i].fromStore)
                continue;
            const std::string fp = runs[i].config.frontEndFingerprint();
            std::size_t g = 0;
            while (g < groups.size() &&
                   runs[groups[g][0]].config.frontEndFingerprint() != fp)
                ++g;
            if (g == groups.size())
                groups.emplace_back();
            groups[g].push_back(i);
        }
        support::parallelFor(groups.size(), jobs, [&](std::size_t g) {
            if (support::shutdownRequested())
                return;
            std::vector<MachineConfig> configs;
            std::vector<std::string> keys;
            for (const std::size_t i : groups[g]) {
                configs.push_back(runs[i].config);
                keys.push_back(runs[i].key);
            }
            const BatchedGroupResult out =
                runBatchedGroup(*shared, configs, keys);
            for (std::size_t k = 0; k < groups[g].size(); ++k) {
                CellRun &run = runs[groups[g][k]];
                if (out.cells[k].ok) {
                    run.stats = out.cells[k].stats;
                    run.ok = true;
                } else {
                    run.error = out.cells[k].error;
                    run.attempts = 1;
                    warn("config %s failed (attempt 1 of %u): %s",
                         run.key.c_str(), kAttempts,
                         run.error.c_str());
                }
            }
        });
    }

    support::parallelFor(runs.size(), jobs, [&](std::size_t i) {
        CellRun &run = runs[i];
        if (run.fromStore || run.ok)
            return;
        if (support::shutdownRequested())
            return;     // interrupted: skip configs not yet started
        for (unsigned attempt = run.attempts + 1; attempt <= kAttempts;
             ++attempt) {
            try {
                if (support::faultShouldFire("cell-throw",
                                             run.key.c_str())) {
                    throw std::runtime_error(
                        "injected fault: cell-throw at '" + run.key +
                        "'");
                }
                const std::unique_ptr<TraceSource> view =
                    shared->cursor();
                LimitScheduler scheduler(run.config);
                run.stats = scheduler.run(*view);
                run.ok = true;
                return;
            } catch (const std::exception &e) {
                run.error = e.what();
                run.attempts = attempt;
            } catch (...) {
                run.error = "unknown exception";
                run.attempts = attempt;
            }
            warn("config %s failed (attempt %u of %u): %s",
                 run.key.c_str(), attempt, kAttempts,
                 run.error.c_str());
        }
    });

    // Persist serially, in config order, so the cache bytes are
    // deterministic for a given sweep.
    if (store) {
        for (const CellRun &run : runs) {
            if (run.ok && !run.fromStore) {
                store->append(run.key, run.config.fingerprint(),
                              digest, run.stats);
            }
        }
    }

    if (support::shutdownRequested()) {
        std::size_t finished = 0;
        for (const CellRun &run : runs)
            finished += run.ok ? 1 : 0;
        if (store) {
            std::fprintf(stderr,
                         "# interrupted: %zu finished config%s "
                         "checkpointed to %s; rerun with --resume to "
                         "continue\n",
                         finished, finished == 1 ? "" : "s",
                         store->path().c_str());
        } else {
            std::fprintf(stderr,
                         "# interrupted: %zu finished config%s "
                         "discarded (use --cache-dir to checkpoint)\n",
                         finished, finished == 1 ? "" : "s");
        }
        return 128 + support::shutdownSignal();
    }

    bool first = true;
    std::size_t failed = 0;
    for (const CellRun &run : runs) {
        if (!run.ok) {
            ++failed;
            continue;
        }
        if (!first)
            std::printf("\n");
        first = false;
        printStats(run.config, run.stats);
    }
    if (failed > 0) {
        std::fprintf(stderr, "ddsc-sim: %zu cell%s quarantined:\n",
                     failed, failed == 1 ? "" : "s");
        for (const CellRun &run : runs) {
            if (!run.ok) {
                std::fprintf(stderr, "  %s: %s (after %u attempts)\n",
                             run.key.c_str(), run.error.c_str(),
                             run.attempts);
            }
        }
        return 1;
    }
    return 0;
}
