/**
 * @file
 * ddsc-asm: assemble a program, execute it, and write its dynamic
 * trace to a binary trace file for later simulation (the qpt2 role).
 *
 * Usage:
 *   ddsc-asm prog.s -o prog.trc [--limit N] [--list]
 *
 * Options:
 *   -o FILE     output trace file (required)
 *   --limit N   stop tracing after N instructions
 *   --list      print the assembled program before running
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "masm/assembler.hh"
#include "support/logging.hh"
#include "support/version.hh"
#include "trace/source.hh"
#include "vm/vm.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-asm prog.s -o prog.trc [--limit N] [--list]\n"
        "       ddsc-asm --version\n");
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string input, output;
    std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
    bool list = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o") {
            if (i + 1 >= argc)
                usage();
            output = argv[++i];
        } else if (arg == "--limit") {
            if (i + 1 >= argc)
                usage();
            limit = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--version") {
            support::version::print("ddsc-asm");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else if (input.empty()) {
            input = arg;
        } else {
            usage();
        }
    }
    if (input.empty() || output.empty())
        usage();

    std::ifstream in(input, std::ios::binary);
    if (!in)
        ddsc_fatal("cannot open '%s'", input.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const AsmResult result = assemble(buffer.str());
    if (!result.ok())
        ddsc_fatal("assembly failed:\n%s", result.errorText().c_str());

    if (list) {
        for (std::size_t i = 0; i < result.program.text.size(); ++i) {
            std::printf("%08llx  %s\n",
                        static_cast<unsigned long long>(
                            Program::pcOf(i)),
                        result.program.text[i].toString().c_str());
        }
    }

    TraceFileWriter writer(output);
    Vm vm(result.program);
    const Vm::RunResult run = vm.run(&writer, limit);
    writer.close();
    std::printf("%s: %llu instructions traced to %s (halted: %s, "
                "r25=%u)\n",
                input.c_str(),
                static_cast<unsigned long long>(run.instructions),
                output.c_str(), run.halted ? "yes" : "no",
                vm.reg(kChecksumReg));
    return 0;
}
