/**
 * @file
 * ddsc-tracegen: synthetic DDSCTRC v4 corpus generator and
 * bounded-residency sweeper — the tool behind the CI job that proves
 * a corpus larger than RAM sweeps in bounded RSS with bit-identical
 * digests.
 *
 * Usage:
 *   ddsc-tracegen gen --dir DIR --files N --records M
 *                     [--seed S] [--block-size BYTES]
 *   ddsc-tracegen sweep --dir DIR [--budget-mb N] [--max-rss-mb N]
 *                       [--configs A..E] [--width N]
 *
 * gen writes N v4 trace files of M synthetic records each under DIR
 * (synth-0.trc ...), generating in bounded chunks so the generator's
 * own RSS stays flat no matter how large the corpus — the writer
 * streams blocks to disk and never holds more than one chunk of
 * records.  Each file gets a distinct seed, so the corpus is
 * deterministic for a given --seed.
 *
 * sweep maps every *.trc under DIR (MappedTraceSource) and walks each
 * one through a zero-copy cursor under a TraceResidencyManager
 * --budget-mb, verifying two invariants per file:
 *
 *   1. digest identity: the FNV-1a stream digest recomputed from the
 *      cursor's records equals the digest the writer stamped into the
 *      header — i.e. the mapped path reproduces exactly the bytes the
 *      vector path would have digested (the two share digestRecords'
 *      fold); and
 *   2. every block CRC passes (the cursor validates lazily on entry).
 *
 * With --configs it additionally runs a batched one-pass simulation
 * group per file.  At the end it prints the residency counters and
 * the process's peak RSS (getrusage), and exits 1 if --max-rss-mb was
 * given and the peak exceeded it — that exit code is the CI gate that
 * the residency budget actually bounds memory.
 */

#include <sys/resource.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "sim/batched.hh"
#include "support/logging.hh"
#include "support/version.hh"
#include "trace/mapped.hh"
#include "trace/record.hh"
#include "trace/source.hh"
#include "trace/synthetic.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-tracegen gen --dir DIR --files N --records M\n"
        "                         [--seed S] [--block-size BYTES]\n"
        "       ddsc-tracegen sweep --dir DIR [--budget-mb N]\n"
        "                           [--max-rss-mb N] [--configs A..E]\n"
        "                           [--width N]\n");
    std::exit(2);
}

/** Peak RSS of this process in MiB (ru_maxrss is KiB on Linux). */
std::uint64_t
peakRssMb()
{
    rusage ru{};
    ::getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;
}

/** Records generated per chunk: bounds gen's own memory (a chunk of
 *  TraceRecords is ~90 MB at 1 M records; the writer itself buffers
 *  only one block). */
constexpr std::uint64_t kGenChunk = 1u << 20;

int
runGen(const std::string &dir, std::uint64_t files,
       std::uint64_t records, std::uint64_t seed,
       std::uint32_t blockSize)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        ddsc_fatal("cannot create corpus dir '%s': %s", dir.c_str(),
                   ec.message().c_str());
    }
    std::uint64_t totalBytes = 0;
    for (std::uint64_t f = 0; f < files; ++f) {
        const std::string path =
            dir + "/synth-" + std::to_string(f) + ".trc";
        TraceFileWriter writer(path, 4, blockSize);
        std::uint64_t emitted = 0;
        std::uint64_t chunkIndex = 0;
        while (emitted < records) {
            SyntheticTraceConfig config;
            config.instructions = std::min(kGenChunk, records - emitted);
            // Distinct stream per (corpus seed, file, chunk); the
            // generator is deterministic, so the whole corpus is.
            config.seed = seed * 1000003ull + f * 8191ull + chunkIndex;
            const VectorTraceSource chunk = generateSynthetic(config);
            for (const TraceRecord &rec : chunk.records())
                writer.emit(rec);
            emitted += config.instructions;
            ++chunkIndex;
        }
        writer.close();
        const std::uint64_t bytes = std::filesystem::file_size(path);
        totalBytes += bytes;
        std::printf("%s: %" PRIu64 " records, %" PRIu64 " bytes, "
                    "digest %016" PRIx64 "\n",
                    path.c_str(), records, bytes, writer.digest());
    }
    std::printf("corpus: %" PRIu64 " files, %" PRIu64 " bytes "
                "(%.2f GiB), gen peak RSS %" PRIu64 " MiB\n",
                files, totalBytes,
                static_cast<double>(totalBytes) / (1024.0 * 1024.0 *
                                                   1024.0),
                peakRssMb());
    return 0;
}

int
runSweep(const std::string &dir, std::uint64_t budgetMb,
         std::uint64_t maxRssMb, const std::string &configIds,
         unsigned width)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".trc")
            paths.push_back(entry.path().string());
    }
    if (ec)
        ddsc_fatal("cannot list '%s': %s", dir.c_str(),
                   ec.message().c_str());
    if (paths.empty())
        ddsc_fatal("no .trc files under '%s'", dir.c_str());
    std::sort(paths.begin(), paths.end());

    // Map the whole corpus up front: cheap (O(blocks) per file, no
    // record is read) and exactly what the server does with a full
    // --trace-dir.
    std::vector<std::unique_ptr<MappedTraceSource>> traces;
    std::uint64_t corpusBytes = 0;
    for (const std::string &path : paths) {
        traces.push_back(std::make_unique<MappedTraceSource>(path));
        corpusBytes += traces.back()->mappedBytes();
    }

    TraceResidencyManager residency;
    residency.setBudgetBytes(budgetMb * 1024 * 1024);

    std::uint64_t totalRecords = 0;
    for (const auto &trace : traces) {
        residency.touch(*trace);

        // Digest-identity gate: re-fold every record coming out of
        // the zero-copy cursor and compare against the header digest
        // the writer stamped (which equals digestRecords over the
        // vector path).  Walking every record also forces every lazy
        // block CRC.
        RecordDigest digest;
        const std::unique_ptr<TraceSource> cursor = trace->cursor();
        TraceRecord rec;
        std::uint64_t walked = 0;
        while (cursor->next(rec)) {
            digest.add(rec);
            ++walked;
        }
        if (walked != trace->recordCount() ||
            digest.value() != trace->digest()) {
            std::fprintf(stderr,
                         "DIGEST MISMATCH %s: cursor walked %" PRIu64
                         " records folding to %016" PRIx64
                         " but the header promises %" PRIu64
                         " records, digest %016" PRIx64 "\n",
                         trace->path().c_str(), walked, digest.value(),
                         trace->recordCount(), trace->digest());
            return 1;
        }
        totalRecords += walked;

        // One batched group per config letter: configs of different
        // letters need not share a front-end fingerprint, and
        // runBatchedGroup requires groups to agree on it.
        for (const char c : configIds) {
            const std::vector<MachineConfig> configs = {
                MachineConfig::paper(c, width)};
            const std::vector<std::string> keys = {
                trace->path() + "/" + std::string(1, c)};
            const BatchedGroupResult out =
                runBatchedGroup(*trace, configs, keys);
            if (!out.cells[0].ok) {
                std::fprintf(stderr, "SIM FAILED %s: %s\n",
                             keys[0].c_str(),
                             out.cells[0].error.c_str());
                return 1;
            }
        }
    }

    const TraceResidencyManager::Counters counters =
        residency.counters();
    const std::uint64_t rssMb = peakRssMb();
    std::printf("swept %zu files, %" PRIu64 " records, %" PRIu64
                " bytes (%.2f GiB)\n",
                traces.size(), totalRecords, corpusBytes,
                static_cast<double>(corpusBytes) /
                    (1024.0 * 1024.0 * 1024.0));
    std::printf("residency: budget %" PRIu64 " B, mapped %" PRIu64
                " B, resident %" PRIu64 " B, %" PRIu64 " evictions\n",
                counters.budgetBytes, counters.mappedBytes,
                counters.residentBytes, counters.evictions);
    std::printf("peak RSS: %" PRIu64 " MiB\n", rssMb);
    if (maxRssMb != 0 && rssMb > maxRssMb) {
        std::fprintf(stderr,
                     "RSS GATE FAILED: peak %" PRIu64 " MiB > limit %"
                     PRIu64 " MiB (budget %" PRIu64
                     " MiB over a %" PRIu64 "-byte corpus)\n",
                     rssMb, maxRssMb, budgetMb, corpusBytes);
        return 1;
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string mode = argv[1];
    if (mode == "--version") {
        ddsc::support::version::print("ddsc-tracegen");
        return 0;
    }
    if (mode != "gen" && mode != "sweep")
        usage();

    std::string dir;
    std::uint64_t files = 4, records = 1u << 20, seed = 1;
    std::uint32_t blockSize = 0;    // writer default
    std::uint64_t budgetMb = 0, maxRssMb = 0;
    std::string configIds;
    unsigned width = 4;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--dir") {
            dir = value();
        } else if (arg == "--files") {
            files = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--records") {
            records = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--block-size") {
            blockSize = static_cast<std::uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--budget-mb") {
            budgetMb = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--max-rss-mb") {
            maxRssMb = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--configs") {
            configIds = value();
            for (const char c : configIds) {
                if (!ddsc::MachineConfig::isKnownConfig(c))
                    usage();
            }
        } else if (arg == "--width") {
            width = static_cast<unsigned>(std::atoi(value().c_str()));
            if (width == 0)
                usage();
        } else {
            usage();
        }
    }
    if (dir.empty() || files == 0 || records == 0)
        usage();

    if (mode == "gen")
        return runGen(dir, files, records, seed, blockSize);
    return runSweep(dir, budgetMb, maxRssMb, configIds, width);
}
