#!/usr/bin/env bash
# Overload-and-cancellation soak, driven by ctest and CI: deadline
# propagation, cooperative cancellation, admission shedding, and
# brownout, with real processes under injected cell stalls.
#
#   1. fleet storm     a 3-shard fleet with a stalled cell; N
#                      concurrent clients with mixed deadlines.  The
#                      tight-deadline clients fail *typed* (exit 4),
#                      the no-deadline clients all render bytes
#                      identical to ddsc-matrix, and afterwards the
#                      fleet reports ZERO quarantined cells — a
#                      cancelled or expired request never poisons a
#                      cell for everyone else.
#   2. re-run clean    the very cells the cancelled requests abandoned
#                      re-run cleanly: one more no-deadline sweep,
#                      byte-identical to the oracle.
#   3. brownout        a single server saturated at --max-active 1
#                      --queue-depth 0 by a long stalled request:
#                      a request answerable from the durable cache is
#                      still served (brownout, oracle bytes) while a
#                      fresh-simulation request is shed with a typed
#                      Overloaded carrying a retry-after hint.
#   4. strict deadline --deadline-ms 0 / negative / garbage / huge are
#                      usage errors (exit 2), never "no deadline".
#
# The in-process halves live in tests/cancel_test.cpp,
# tests/admission_test.cpp, and tests/serve_test.cpp.
#
# usage: overload_chaos.sh <ddsc-served> <ddsc-client> <ddsc-matrix>
set -euo pipefail

SERVED=$1
CLIENT=$2
MATRIX=$3

export DDSC_TRACE_LIMIT=20000
QUERY=(--set pc --configs AD --widths 4 --metric ipc --csv)
SHARDS=3
N_CLIENTS=6

work=$(mktemp -d)
FLEET=
SINGLE=
cleanup() {
    [ -n "$FLEET" ] && kill "$FLEET" 2>/dev/null || true
    [ -n "$SINGLE" ] && kill "$SINGLE" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

wait_port_file() { # args: path, what
    for _ in $(seq 1 150); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "$2 never wrote its port file" >&2
    return 1
}

quarantined_cells() { # args: port file; fleet total + every shard row
    "$CLIENT" --port-file "$1" --retries 10 --retry-budget-ms 30000 \
        --health --json > "$work/health.json"
    sed -n 's/.*"quarantined_cells": \([0-9]*\).*/\1/p' \
        "$work/health.json" | sort -u | tr -d '\n'
}

"$MATRIX" "${QUERY[@]}" > "$work/oracle.csv" 2> /dev/null

# --- 1: fleet storm under mixed deadlines ------------------------------
# Every request that touches li/A/4 stalls 800 ms; a 150 ms deadline
# cannot survive it and must cancel, while an unbounded client rides
# it out.
DDSC_FAULT=cell-stall:li/A/4 DDSC_FAULT_STALL_MS=800 \
    "$SERVED" --fleet "$SHARDS" --port 0 --port-file "$work/port" \
    --pid-file "$work/pid" --runtime-dir "$work/rt" --jobs 2 \
    --cache-dir "$work/cache" --max-restarts 50 \
    --watchdog-budget-ms 10000 --router-retry-budget-ms 60000 \
    2>> "$work/served.log" &
FLEET=$!
wait_port_file "$work/port" "router"
for i in $(seq 0 $((SHARDS - 1))); do
    wait_port_file "$work/rt/shard-$i.port" "shard $i"
done

pids=()
for i in $(seq 1 "$N_CLIENTS"); do
    if [ $((i % 2)) -eq 0 ]; then
        # Tight deadline: expires inside the injected stall.
        "$CLIENT" --port-file "$work/port" --deadline-ms 150 \
            "${QUERY[@]}" > "$work/storm$i.csv" \
            2> "$work/storm$i.log" &
    else
        # No deadline: must ride out the stall and match the oracle.
        "$CLIENT" --port-file "$work/port" --retries 10 \
            --retry-budget-ms 60000 "${QUERY[@]}" \
            > "$work/storm$i.csv" 2> "$work/storm$i.log" &
    fi
    pids+=($!)
done
tight_failed=0
for i in $(seq 1 "$N_CLIENTS"); do
    rc=0
    wait "${pids[$((i - 1))]}" || rc=$?
    if [ $((i % 2)) -eq 0 ]; then
        # Typed server error (Cancelled/Deadline), never transport
        # (3), quarantine (1), or silent success with partial bytes.
        if [ "$rc" -eq 4 ]; then
            tight_failed=$((tight_failed + 1))
            grep -Eq 'cancelled|deadline' "$work/storm$i.log" ||
                { echo "tight client $i failed without a typed \
cancel/deadline message" >&2; cat "$work/storm$i.log" >&2; exit 1; }
        elif [ "$rc" -ne 0 ]; then
            echo "tight client $i exited $rc (want 0 or 4)" >&2
            cat "$work/storm$i.log" >&2
            exit 1
        fi
    else
        [ "$rc" -eq 0 ] ||
            { echo "unbounded client $i exited $rc" >&2;
              cat "$work/storm$i.log" >&2; exit 1; }
        cmp "$work/oracle.csv" "$work/storm$i.csv" ||
            { echo "unbounded client $i diverged from the oracle" >&2;
              exit 1; }
    fi
done
[ "$tight_failed" -ge 1 ] ||
    { echo "no tight-deadline client was cancelled; the stall never \
bit" >&2; exit 1; }

# A cancelled cell must never be quarantined for everyone else.
q=$(quarantined_cells "$work/port")
[ "$q" = "0" ] ||
    { echo "cancellations quarantined $q cell(s)" >&2; exit 1; }

# --- 2: the abandoned cells re-run cleanly -----------------------------
"$CLIENT" --port-file "$work/port" --retries 10 \
    --retry-budget-ms 60000 "${QUERY[@]}" > "$work/rerun.csv" \
    2> "$work/rerun.log"
cmp "$work/oracle.csv" "$work/rerun.csv" ||
    { echo "post-storm re-run diverged from the oracle" >&2; exit 1; }

kill -TERM "$FLEET"
wait "$FLEET" || { echo "fleet did not drain cleanly" >&2; exit 1; }
FLEET=

# --- 3: brownout at a saturated single server --------------------------
# One admission slot, no queue.  Warm the cache, stall the slot with a
# fresh config, then: cached query -> bytes (brownout); fresh query ->
# typed Overloaded with a retry-after hint.
DDSC_FAULT=cell-stall:li/E/4 DDSC_FAULT_STALL_MS=4000 \
    "$SERVED" --port 0 --port-file "$work/sport" \
    --pid-file "$work/spid" --jobs 2 --cache-dir "$work/scache" \
    --max-active 1 --queue-depth 0 --brownout \
    2>> "$work/single.log" &
SINGLE=$!
wait_port_file "$work/sport" "single server"

"$CLIENT" --port-file "$work/sport" "${QUERY[@]}" \
    > "$work/warm.csv" 2> /dev/null
cmp "$work/oracle.csv" "$work/warm.csv" ||
    { echo "warm query diverged from the oracle" >&2; exit 1; }

# Occupy the only slot: config E stalls 4 s.
"$CLIENT" --port-file "$work/sport" --set pc --configs E --widths 4 \
    --metric ipc --csv > "$work/holder.csv" 2> "$work/holder.log" &
HOLDER=$!
sleep 1

# Cached cells still answer — brownout — with the same bytes as ever.
"$CLIENT" --port-file "$work/sport" "${QUERY[@]}" \
    > "$work/brownout.csv" 2> "$work/brownout.log" ||
    { echo "cached query was not brownout-served" >&2;
      cat "$work/brownout.log" >&2; exit 1; }
cmp "$work/oracle.csv" "$work/brownout.csv" ||
    { echo "brownout bytes diverged from the oracle" >&2; exit 1; }

# Fresh simulation sheds, typed, with a priced retry hint.
rc=0
"$CLIENT" --port-file "$work/sport" --set pc --configs B --widths 4 \
    --metric ipc --csv > /dev/null 2> "$work/shed.log" || rc=$?
[ "$rc" -eq 4 ] ||
    { echo "fresh query at saturation exited $rc (want 4)" >&2;
      cat "$work/shed.log" >&2; exit 1; }
grep -q 'overloaded' "$work/shed.log" ||
    { echo "shed was not a typed Overloaded" >&2;
      cat "$work/shed.log" >&2; exit 1; }
grep -Eq 'retry after [0-9]+ ms' "$work/shed.log" ||
    { echo "shed carried no retry-after hint" >&2;
      cat "$work/shed.log" >&2; exit 1; }

wait "$HOLDER" || { echo "stalled holder request failed" >&2;
                    cat "$work/holder.log" >&2; exit 1; }
kill -TERM "$SINGLE"
wait "$SINGLE" || { echo "single server did not drain" >&2; exit 1; }
SINGLE=

# --- 4: strict --deadline-ms parsing -----------------------------------
for bad in 0 -5 86400001 12x ""; do
    rc=0
    "$CLIENT" --port 1 --deadline-ms "$bad" "${QUERY[@]}" \
        > /dev/null 2>> "$work/usage.log" || rc=$?
    [ "$rc" -eq 2 ] ||
        { echo "--deadline-ms '$bad' exited $rc (want usage error 2)" \
            >&2; exit 1; }
done
grep -q 'positive integer' "$work/usage.log" ||
    { echo "usage error did not explain the deadline bounds" >&2;
      exit 1; }

echo "overload chaos: OK"
