/**
 * @file
 * ddsc-trace-dump: inspect a binary trace file.
 *
 * Usage:
 *   ddsc-trace-dump prog.trc [--head N] [--stats]
 *
 * Options:
 *   --head N   print the first N records (default 20; 0 = none)
 *   --stats    print the instruction-mix summary
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/version.hh"
#include "trace/source.hh"
#include "trace/trace_stats.hh"

namespace
{

using namespace ddsc;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
        "usage: ddsc-trace-dump prog.trc [--head N] [--stats]\n"
        "       ddsc-trace-dump --version\n");
    std::exit(2);
}

void
printRecord(const TraceRecord &rec)
{
    std::printf("%08llx  %-6s", static_cast<unsigned long long>(rec.pc),
                std::string(opTraits(rec.op).mnemonic).c_str());
    if (rec.isLoad() || rec.isStore()) {
        std::printf(" ea=%08llx",
                    static_cast<unsigned long long>(rec.ea));
    } else if (rec.isCondBranch()) {
        std::printf(" %s -> %s",
                    std::string(condName(rec.cond)).c_str(),
                    rec.taken ? "taken" : "not-taken");
    }
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::uint64_t head = 20;
    bool stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--head") {
            if (i + 1 >= argc)
                usage();
            head = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--version") {
            support::version::print("ddsc-trace-dump");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            usage();
        }
    }
    if (path.empty())
        usage();

    TraceFileSource source(path);
    std::printf("%s: %llu records\n", path.c_str(),
                static_cast<unsigned long long>(source.count()));

    TraceStats mix;
    TraceRecord rec;
    std::uint64_t printed = 0;
    while (source.next(rec)) {
        if (printed < head) {
            printRecord(rec);
            ++printed;
        }
        if (stats)
            mix.account(rec);
        else if (printed >= head)
            break;
    }

    if (stats) {
        std::printf("\nmix: %.1f%% loads, %.1f%% stores, %.1f%% "
                    "conditional branches, %.1f%% shifts\n",
                    mix.pctLoads(), mix.pctOf(OpClass::Store),
                    mix.pctCondBranches(), mix.pctOf(OpClass::Shift));
        std::printf("mean basic block: %.1f instructions\n",
                    mix.basicBlockSizes().mean());
    }
    return 0;
}
