#!/usr/bin/env bash
# Bounded-RSS corpus sweep gate.
#
# Generates a synthetic DDSCTRC v4 corpus with ddsc-tracegen, sweeps
# it through mmap'd zero-copy cursors under a residency budget, and
# fails unless:
#
#   * every file's cursor-recomputed stream digest matches the digest
#     the writer stamped in its header (the mapped path reproduces the
#     vector path bit-identically),
#   * every lazy per-block CRC passes,
#   * the sweep's peak RSS stays under the gate even though the corpus
#     is several times the residency budget, and
#   * (small mode) at least one LRU eviction actually happened — a
#     budget nothing ever exceeds gates nothing.
#
# usage: trace_rss_check.sh <ddsc-tracegen> <workdir> [small|big]
#
# small: ~64 MB corpus, 16 MB budget, 400 MB RSS gate — quick enough
#        for ctest.
# big:   >1 GB corpus, 256 MB budget, 900 MB RSS gate, plus a batched
#        config-A simulation pass per file — the CI trace-corpus job.
set -euo pipefail

TRACEGEN=$1
WORKDIR=$2
MODE=${3:-small}

DIR="$WORKDIR/trace_rss_corpus"
rm -rf "$DIR"
mkdir -p "$DIR"
trap 'rm -rf "$DIR"' EXIT

case "$MODE" in
  small)
    FILES=4; RECORDS=400000          # 4 x 16 MB = 64 MB corpus
    BUDGET_MB=16; MAX_RSS_MB=400
    SWEEP_ARGS=()
    ;;
  big)
    FILES=9; RECORDS=3200000         # 9 x 128 MB = 1.15 GB corpus
    BUDGET_MB=256; MAX_RSS_MB=900
    SWEEP_ARGS=(--configs A --width 4)
    ;;
  *)
    echo "unknown mode '$MODE'" >&2; exit 2
    ;;
esac

"$TRACEGEN" gen --dir "$DIR" --files "$FILES" --records "$RECORDS" \
    --seed 42

OUT=$("$TRACEGEN" sweep --dir "$DIR" --budget-mb "$BUDGET_MB" \
    --max-rss-mb "$MAX_RSS_MB" "${SWEEP_ARGS[@]+"${SWEEP_ARGS[@]}"}")
echo "$OUT"

# The budget must have been meaningfully smaller than the corpus, and
# the LRU must actually have evicted under it.
echo "$OUT" | grep -q "swept $FILES files"
EVICTIONS=$(echo "$OUT" | sed -n 's/.* \([0-9]*\) evictions/\1/p')
if [ -z "$EVICTIONS" ] || [ "$EVICTIONS" -eq 0 ]; then
    echo "RSS check: expected evictions under a $BUDGET_MB MB budget," \
         "got none" >&2
    exit 1
fi
echo "trace_rss_check ($MODE): OK ($EVICTIONS evictions)"
