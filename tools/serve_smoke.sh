#!/usr/bin/env bash
# End-to-end smoke of the serving daemon, driven by ctest and CI:
#
#   1. cold query    ddsc-client output is byte-identical to ddsc-matrix
#   2. warm query    same bytes, zero cells simulated
#   3. fault         (fault-injection builds) the server hangs up
#                    mid-response once; the client reports a transport
#                    error with exit 3 and the server keeps serving
#   4. drain         SIGTERM: the server exits 0 with a drain summary
#   5. warm restart  a new server over the same --cache-dir answers
#                    entirely from the store (store hits, none simulated)
#
# usage: serve_smoke.sh <ddsc-served> <ddsc-client> <ddsc-matrix> \
#                       [faults|nofaults]
set -euo pipefail

SERVED=$1
CLIENT=$2
MATRIX=$3
FAULTS=${4:-nofaults}

export DDSC_TRACE_LIMIT=20000
QUERY=(--set pc --configs AD --widths 4 --metric ipc --csv)

work=$(mktemp -d)
SPID=
cleanup() {
    [ -n "$SPID" ] && kill "$SPID" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

start_server() { # args: extra served flags...
    : > "$work/port"
    "$SERVED" --port 0 --port-file "$work/port" --jobs 2 \
        --cache-dir "$work/cache" "$@" 2>> "$work/served.log" &
    SPID=$!
    for _ in $(seq 1 100); do
        [ -s "$work/port" ] && return 0
        kill -0 "$SPID" 2>/dev/null || break
        sleep 0.1
    done
    echo "server did not write its port file" >&2
    return 1
}

stop_server() { # SIGTERM must drain: exit 0 and a drain summary
    kill -TERM "$SPID"
    local rc=0
    wait "$SPID" || rc=$?
    SPID=
    [ "$rc" -eq 0 ] || { echo "drain exited $rc" >&2; return 1; }
    grep -q '# drained:' "$work/served.log" ||
        { echo "no drain summary" >&2; return 1; }
}

start_server

# 1. Cold: the served bytes are the ddsc-matrix bytes.
"$MATRIX" "${QUERY[@]}" > "$work/oracle.csv" 2> /dev/null
"$CLIENT" --port-file "$work/port" "${QUERY[@]}" \
    > "$work/cold.csv" 2> "$work/cold.log"
cmp "$work/oracle.csv" "$work/cold.csv"

# 2. Warm: same bytes, nothing simulated.
"$CLIENT" --port-file "$work/port" "${QUERY[@]}" \
    > "$work/warm.csv" 2> "$work/warm.log"
cmp "$work/oracle.csv" "$work/warm.csv"
grep -q ' 0 simulated' "$work/warm.log"

# 3. One mid-response disconnect: typed client failure, healthy server.
if [ "$FAULTS" = faults ]; then
    stop_server
    export DDSC_FAULT=net-disconnect:1
    start_server
    unset DDSC_FAULT
    rc=0
    "$CLIENT" --port-file "$work/port" "${QUERY[@]}" \
        > /dev/null 2> "$work/fault.log" || rc=$?
    [ "$rc" -eq 3 ] ||
        { echo "disconnect: expected exit 3, got $rc" >&2; exit 1; }
    # The reply was computed before the hang-up; the retry is warm and
    # still byte-identical.
    "$CLIENT" --port-file "$work/port" "${QUERY[@]}" \
        > "$work/retry.csv" 2> /dev/null
    cmp "$work/oracle.csv" "$work/retry.csv"
fi

# 4. Clean drain.
stop_server

# 5. Warm restart: the store answers everything.
start_server
"$CLIENT" --port-file "$work/port" "${QUERY[@]}" \
    > "$work/restart.csv" 2> "$work/restart.log"
cmp "$work/oracle.csv" "$work/restart.csv"
grep -q ' 0 simulated' "$work/restart.log"
grep -qE ' [1-9][0-9]* store hits' "$work/restart.log"
stop_server

echo "serve smoke: OK"
