#!/usr/bin/env bash
# Chaos soak of the sharded serving fleet, driven by ctest and CI:
# `ddsc-served --fleet K` (K crash-only shards behind the fan-out
# router), retrying clients, and a hostile operator killing individual
# shards.
#
#   1. cold query      the routed fan-out/merge answer is
#                      byte-identical to ddsc-matrix
#   2. shard SIGKILL   kill -9 one shard at a time, >=3 kills total
#      x3              across different shards, one of them raced
#                      against an in-flight query (mid-fan-out): the
#                      shard's supervisor restarts it, the router
#                      rides onto the new generation through its
#                      retries, every answer stays byte-identical, the
#                      per-shard store record counts never decrease,
#                      and the *other* shards answer health probes
#                      throughout
#   3. store merge     `ddsc-store merge` folds the per-shard stores
#                      into one; a ddsc-matrix --resume over the
#                      merged store simulates nothing and prints the
#                      oracle bytes
#   4. drain           SIGTERM to the fleet manager: every shard
#                      drains, the router stops, runtime files are
#                      removed, exit 0
#
# The in-process half (broken-shard typed degradation, restart riding,
# health aggregation) lives in tests/router_test.cpp.
#
# usage: fleet_chaos.sh <ddsc-served> <ddsc-client> <ddsc-matrix> <ddsc-store>
set -euo pipefail

SERVED=$1
CLIENT=$2
MATRIX=$3
STORE=$4

export DDSC_TRACE_LIMIT=20000
QUERY=(--set pc --configs AD --widths 4 --metric ipc --csv)
RETRY=(--retries 20 --retry-budget-ms 60000)
SHARDS=3

work=$(mktemp -d)
FLEET=
cleanup() {
    [ -n "$FLEET" ] && kill "$FLEET" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

start_fleet() {
    "$SERVED" --fleet "$SHARDS" --port 0 --port-file "$work/port" \
        --pid-file "$work/pid" --runtime-dir "$work/rt" --jobs 2 \
        --cache-dir "$work/cache" --max-restarts 50 \
        --watchdog-budget-ms 10000 --router-retry-budget-ms 60000 \
        2>> "$work/served.log" &
    FLEET=$!
    # The router's port file is the fleet's ready signal; then wait
    # for every shard's own port file so kills have a real victim.
    for _ in $(seq 1 150); do
        [ -s "$work/port" ] && break
        kill -0 "$FLEET" 2>/dev/null ||
            { echo "fleet manager died while starting" >&2; return 1; }
        sleep 0.1
    done
    [ -s "$work/port" ] ||
        { echo "router never wrote its port file" >&2; return 1; }
    for i in $(seq 0 $((SHARDS - 1))); do
        wait_shard "$i"
    done
}

wait_shard() { # args: shard index; its port file is its ready signal
    for _ in $(seq 1 150); do
        [ -s "$work/rt/shard-$1.port" ] && return 0
        sleep 0.1
    done
    echo "shard $1 never wrote its port file" >&2
    return 1
}

stop_fleet() { # SIGTERM: shards drain, router stops, exit 0
    kill -TERM "$FLEET"
    local rc=0
    wait "$FLEET" || rc=$?
    FLEET=
    [ "$rc" -eq 0 ] ||
        { echo "fleet manager exited $rc on SIGTERM" >&2; return 1; }
}

kill_shard() { # args: shard index; -9 the serving process
    local victim
    victim=$(cat "$work/rt/shard-$1.pid")
    [ -n "$victim" ] || { echo "empty pid file for shard $1" >&2; return 1; }
    rm -f "$work/rt/shard-$1.port"  # so wait_shard sees the *next* generation
    kill -KILL "$victim"
}

query_matches_oracle() { # args: label
    "$CLIENT" --port-file "$work/port" "${RETRY[@]}" "${QUERY[@]}" \
        > "$work/$1.csv" 2> "$work/$1.log"
    cmp "$work/oracle.csv" "$work/$1.csv" ||
        { echo "$1: bytes diverged from the oracle" >&2; return 1; }
}

shard_records() { # args: shard index; durable records in its own store
    "$STORE" info "$work/cache/shard-$1" |
        awk -F: '{ n = $2; sub(/ */, "", n); sub(/ cells.*/, "", n); print n }'
}

fleet_serves_health() { # the router must answer with all shard rows
    "$CLIENT" --port-file "$work/port" "${RETRY[@]}" --health --json \
        > "$work/health.json"
    local rows
    rows=$(grep -c '"index"' "$work/health.json") || true
    [ "$rows" -eq "$SHARDS" ] ||
        { echo "health listed $rows of $SHARDS shards" >&2; return 1; }
}

"$MATRIX" "${QUERY[@]}" > "$work/oracle.csv" 2> /dev/null

# --- 1 + 2: per-shard SIGKILL soak -------------------------------------
start_fleet

query_matches_oracle cold
fleet_serves_health
for i in $(seq 0 $((SHARDS - 1))); do
    eval "records_$i=\$(shard_records $i)"
done

for round in 1 2 3; do
    victim=$(( (round - 1) % SHARDS ))
    kill_shard "$victim"
    # Round 2 races the kill against an in-flight query instead of
    # politely waiting for the restart: the router is mid-fan-out when
    # the shard's generation dies under it.
    if [ "$round" -ne 2 ]; then
        wait_shard "$victim"
    fi
    # Healthy shards keep serving while the victim restarts.
    fleet_serves_health
    query_matches_oracle "kill$round"
    for i in $(seq 0 $((SHARDS - 1))); do
        prev=$(eval "echo \$records_$i")
        next=$(shard_records "$i")
        [ "$next" -ge "$prev" ] ||
            { echo "shard $i store shrank: $prev -> $next" >&2; exit 1; }
        eval "records_$i=$next"
    done
done

kills=$(grep -c 'killed by signal 9' "$work/served.log") || true
[ "$kills" -ge 3 ] ||
    { echo "expected >=3 logged shard SIGKILLs, saw $kills" >&2; exit 1; }

# --- 4 (drain before 3: merge wants quiesced stores) -------------------
stop_fleet
grep -q 'ddsc-served\[fleet\]: drained cleanly' "$work/served.log" ||
    { echo "no clean fleet drain after SIGTERM" >&2; exit 1; }
for f in "$work/port" "$work/pid" "$work"/rt/shard-*.port \
         "$work"/rt/shard-*.pid; do
    [ -e "$f" ] && { echo "stale runtime file after drain: $f" >&2; exit 1; }
done

# --- 3: merge the shard stores and resume over the result --------------
"$STORE" merge --into "$work/merged" \
    "$work"/cache/shard-* > "$work/merge.log"
"$MATRIX" "${QUERY[@]}" --cache-dir "$work/merged" --resume \
    > "$work/resumed.csv" 2> "$work/resume.log"
cmp "$work/oracle.csv" "$work/resumed.csv" ||
    { echo "resume over merged store diverged from the oracle" >&2; exit 1; }
grep -q 'resuming from' "$work/resume.log" ||
    { echo "resume did not load the merged store" >&2; exit 1; }
# Every cell of the sweep must come from the merged store — nothing
# re-simulates ("# N cells, ..." vs "# N cells served from ...").
total=$(awk '/ cells,/ { print $2; exit }' "$work/resume.log")
served=$(awk '/cells served from/ { print $2; exit }' "$work/resume.log")
[ -n "$served" ] && [ "$served" = "$total" ] ||
    { echo "resume served $served of $total cells from the merged store" >&2;
      cat "$work/resume.log" >&2; exit 1; }

echo "fleet chaos: OK"
